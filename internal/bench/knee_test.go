package bench_test

import (
	"reflect"
	"testing"
	"time"

	"diablo/internal/bench"
	"diablo/internal/configs"
)

// kneeOptions is a laptop-scale search: short probes, two bisection steps,
// a bracket wide enough that quorum's devnet knee falls inside it.
func kneeOptions() bench.KneeOptions {
	return bench.KneeOptions{
		Chain:      "quorum",
		Config:     configs.Devnet,
		Lo:         50,
		Hi:         4000,
		Iterations: 2,
		Probe:      5 * time.Second,
		Seed:       1,
	}
}

func TestFindKneeConverges(t *testing.T) {
	res, err := bench.FindKnee(kneeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clipped {
		t.Fatalf("knee clipped: bracket [50, 4000] should contain quorum's devnet knee, got %+v", res)
	}
	if res.Knee < 50 || res.Knee >= res.Ceiling {
		t.Fatalf("knee %f not inside (50, %f)", res.Knee, res.Ceiling)
	}
	// Bracket (2 probes) + 2 bisection steps.
	if len(res.Probes) != 4 {
		t.Fatalf("expected 4 probes, got %d", len(res.Probes))
	}
	if !res.Probes[0].Sustainable {
		t.Fatalf("floor probe should sustain: %+v", res.Probes[0])
	}
	if res.Probes[1].Sustainable {
		t.Fatalf("ceiling probe should break: %+v", res.Probes[1])
	}
}

// TestFindKneeDeterministic: every probe is a seeded isolated run, so the
// whole search replays identically.
func TestFindKneeDeterministic(t *testing.T) {
	a, err := bench.FindKnee(kneeOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bench.FindKnee(kneeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("knee search not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
