package bench

import (
	"reflect"
	"testing"
	"time"

	"diablo/internal/chains"
	"diablo/internal/chains/chain"
	"diablo/internal/chaos"
	"diablo/internal/configs"
	"diablo/internal/workloads"
)

// chaosSchedule builds a schedule exercising every probabilistic primitive:
// a crash that auto-restarts, global loss + jitter, and a straggler.
func chaosSchedule() *chaos.Schedule {
	return chaos.NewSchedule(
		chaos.Event{At: 5 * time.Second, Kind: chaos.Loss, AllLinks: true, Rate: 0.1, For: 30 * time.Second},
		chaos.Event{At: 5 * time.Second, Kind: chaos.Delay, AllLinks: true, Jitter: 20 * time.Millisecond, For: 30 * time.Second},
		chaos.Event{At: 10 * time.Second, Kind: chaos.Crash, Node: 1, For: 15 * time.Second},
		chaos.Event{At: 12 * time.Second, Kind: chaos.Slow, Node: 2, Factor: 3, For: 10 * time.Second},
	)
}

// TestChaosDeterminism guards the seeded-PRNG plumbing: the same
// experiment, fault schedule and seed must produce identical commit
// counts, height and summary metrics across two runs.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Outcome {
		out, err := Run(Experiment{
			Chain:      "quorum",
			Config:     configs.Devnet,
			Traces:     []*workloads.Trace{workloads.NativeConstant(50, 40*time.Second)},
			Seed:       7,
			Tail:       80 * time.Second,
			ScaleNodes: 2,
			Faults:     chaosSchedule(),
			Retry:      chain.RetryPolicy{Timeout: 10 * time.Second, MaxRetries: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Summary.Committed != b.Summary.Committed || a.Blocks != b.Blocks {
		t.Fatalf("commits/height diverged: %d@%d vs %d@%d",
			a.Summary.Committed, a.Blocks, b.Summary.Committed, b.Blocks)
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Fatalf("summaries diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	if a.MsgsLost != b.MsgsLost || a.Retries != b.Retries || a.TimedOut != b.TimedOut {
		t.Fatalf("fault accounting diverged: lost %d/%d retries %d/%d timeouts %d/%d",
			a.MsgsLost, b.MsgsLost, a.Retries, b.Retries, a.TimedOut, b.TimedOut)
	}
	if a.MsgsLost == 0 {
		t.Fatal("10% link loss lost no messages — the loss fault never applied")
	}
}

// TestCanonicalCrashRestartRecovery runs every consensus family under the
// canonical crash-restart schedule and requires a measured recovery: the
// outcome must report commits resuming after the restart, never a silent
// hang.
func TestCanonicalCrashRestartRecovery(t *testing.T) {
	for _, name := range chains.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := Run(Experiment{
				Chain:  name,
				Config: configs.Devnet,
				Traces: []*workloads.Trace{workloads.NativeConstant(20, 60*time.Second)},
				Seed:   3,
				Tail:   120 * time.Second,
				Faults: chaos.CanonicalCrashRestart(1, 15*time.Second, 35*time.Second),
				Retry:  chain.RetryPolicy{Timeout: 15 * time.Second, MaxRetries: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.Summary.Committed == 0 {
				t.Fatalf("%s committed nothing under the canonical schedule", name)
			}
			// Every submission must settle: committed, dropped, aborted or
			// timed out — nothing may hang pending forever.
			settled := out.Summary.Committed + out.Summary.Aborted + out.Dropped + out.TimedOut
			if settled < out.Summary.Submitted {
				t.Fatalf("%s: %d of %d submissions unsettled (silent hang)",
					name, out.Summary.Submitted-settled, out.Summary.Submitted)
			}
		})
	}
}

// TestFaultValidationAtRunTime rejects schedules that target nodes outside
// the (scaled) deployment.
func TestFaultValidationAtRunTime(t *testing.T) {
	_, err := Run(Experiment{
		Chain:      "quorum",
		Config:     configs.Devnet, // 10 nodes, scaled to 5
		Traces:     []*workloads.Trace{workloads.NativeConstant(1, time.Second)},
		ScaleNodes: 2,
		Faults:     chaos.CanonicalCrashRestart(7, time.Second, 2*time.Second),
	})
	if err == nil {
		t.Fatal("out-of-range fault target accepted")
	}
}
