package bench

import (
	"fmt"
	"testing"
	"time"

	"diablo/internal/configs"
	"diablo/internal/types"
	"diablo/internal/wallet"
	"diablo/internal/workloads"
)

// benchAccount and benchTransfer keep the ablation benchmarks terse.

func newBenchAccount(ns string, i int) *wallet.Account {
	return wallet.NewAccount(wallet.FastScheme{}, []byte(fmt.Sprintf("bench-%s-%d", ns, i)))
}

func benchTransfer(acct *wallet.Account, nonce uint64) *types.Transaction {
	tx := &types.Transaction{
		Kind:     types.KindTransfer,
		To:       types.Address{1},
		Value:    1,
		GasLimit: 21000,
	}
	acct.SignNext(tx)
	return tx
}

// --- bench.Run unit tests ---

func TestRunValidation(t *testing.T) {
	if _, err := Run(Experiment{Chain: "quorum"}); err == nil {
		t.Fatal("missing config accepted")
	}
	if _, err := Run(Experiment{Chain: "quorum", Config: configs.Devnet}); err == nil {
		t.Fatal("missing traces accepted")
	}
	if _, err := Run(Experiment{
		Chain: "nope", Config: configs.Devnet,
		Traces: []*workloads.Trace{workloads.NativeConstant(1, time.Second)},
	}); err == nil {
		t.Fatal("unknown chain accepted")
	}
	if _, err := Run(Experiment{
		Chain: "quorum", Config: configs.Devnet, Scheme: "rsa4096",
		Traces: []*workloads.Trace{workloads.NativeConstant(1, time.Second)},
	}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed int64) float64 {
		out, err := Run(Experiment{
			Chain:      "algorand",
			Config:     configs.Devnet,
			Traces:     []*workloads.Trace{workloads.NativeConstant(100, 20*time.Second)},
			Seed:       seed,
			Tail:       60 * time.Second,
			ScaleNodes: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Summary.ThroughputTPS
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Fatalf("same seed diverged: %v vs %v", a1, a2)
	}
}

func TestTracesForAndScale(t *testing.T) {
	gafam, err := TracesFor("exchange")
	if err != nil || len(gafam) != 5 {
		t.Fatalf("gafam = %d traces, %v", len(gafam), err)
	}
	single, err := TracesFor("fifa98")
	if err != nil || len(single) != 1 {
		t.Fatalf("fifa = %d traces, %v", len(single), err)
	}
	if _, err := TracesFor("netflix"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	scaled := Scale(single, 0.5)
	if scaled[0].Total() >= single[0].Total() {
		t.Fatal("scaling did not reduce the trace")
	}
	same := Scale(single, 1)
	if same[0] != single[0] {
		t.Fatal("unit scale should be a no-op")
	}
}

func TestRunReportsDiagnostics(t *testing.T) {
	out, err := Run(Experiment{
		Chain:      "solana",
		Config:     configs.Devnet,
		Traces:     []*workloads.Trace{workloads.NativeConstant(50, 10*time.Second)},
		Seed:       1,
		Tail:       60 * time.Second,
		ScaleNodes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Blocks == 0 {
		t.Fatal("no blocks recorded")
	}
	if out.VirtualTime < 70*time.Second {
		t.Fatalf("virtual time %v too short", out.VirtualTime)
	}
	if out.WallTime <= 0 {
		t.Fatal("wall time missing")
	}
	if out.ExecutedTxs == 0 {
		t.Fatal("executed count missing")
	}
}

func TestPlacementRestrictsClients(t *testing.T) {
	// Restrict Secondaries to Tokyo; transactions must still commit, and
	// an unknown or undeployed region must error.
	out, err := Run(Experiment{
		Chain:     "quorum",
		Config:    configs.Devnet,
		Traces:    []*workloads.Trace{workloads.NativeConstant(20, 10*time.Second)},
		Seed:      1,
		Tail:      60 * time.Second,
		Locations: []string{"tokyo"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary.Committed != 200 {
		t.Fatalf("committed %d/200 via tokyo placement", out.Summary.Committed)
	}
	if _, err := Run(Experiment{
		Chain:     "quorum",
		Config:    configs.Testnet, // ohio only
		Traces:    []*workloads.Trace{workloads.NativeConstant(1, time.Second)},
		Locations: []string{"tokyo"},
	}); err == nil {
		t.Fatal("placement in an undeployed region accepted")
	}
	if _, err := Run(Experiment{
		Chain:     "quorum",
		Config:    configs.Devnet,
		Traces:    []*workloads.Trace{workloads.NativeConstant(1, time.Second)},
		Locations: []string{"mars"},
	}); err == nil {
		t.Fatal("unknown region accepted")
	}
}
