package bench

import (
	"fmt"
	"time"

	"diablo/internal/snapshot"
)

// RefineBisect narrows a divergence window found by snapshot.Bisect: both
// experiments are re-run with a finer checkpoint cadence restricted to
// just the divergent window, and the fresh checkpoints are bisected
// again. The capture ticker is an observer event and window bounds gate
// only the file writes, so neither the finer cadence nor the window can
// alter either run's trajectory — the refined report localizes the same
// divergence, just to a smaller virtual-time window (down to a single
// event batch at every=1ns).
//
// expA and expB must be the experiment configurations that produced the
// coarse report's checkpoint directories; dirA and dirB are fresh scratch
// directories for the refined checkpoints.
func RefineBisect(expA, expB Experiment, coarse *snapshot.BisectReport, every time.Duration, dirA, dirB string) (*snapshot.BisectReport, error) {
	if coarse.Identical {
		return nil, fmt.Errorf("bench: refine: runs are identical, no window to narrow")
	}
	if every <= 0 {
		return nil, fmt.Errorf("bench: refine: checkpoint interval must be positive, got %s", every)
	}
	from := coarse.WindowStart
	if from < 0 {
		from = 0
	}
	runs := []struct {
		name string
		exp  *Experiment
		dir  string
	}{
		{"run-a", &expA, dirA},
		{"run-b", &expB, dirB},
	}
	for _, r := range runs {
		r.exp.CheckpointEvery = every
		r.exp.CheckpointFrom = from
		r.exp.CheckpointUntil = coarse.WindowEnd
		r.exp.CheckpointKeep = 0
		r.exp.Resume = ""
		r.exp.CheckpointDir = r.dir
		if _, err := Run(*r.exp); err != nil {
			return nil, fmt.Errorf("bench: refine: %s: %w", r.name, err)
		}
	}
	rep, err := snapshot.Bisect(dirA, dirB)
	if err != nil {
		return nil, fmt.Errorf("bench: refine: %w", err)
	}
	return rep, nil
}
