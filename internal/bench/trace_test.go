package bench

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"testing"
	"time"

	"diablo/internal/configs"
	"diablo/internal/obs"
	"diablo/internal/spec"
	"diablo/internal/workloads"
)

// tracedChaosExperiment builds the canonical quorum-chaos run with tracing
// and metrics enabled, writing the gzip-compressed trace into buf.
func tracedChaosExperiment(t *testing.T, buf io.Writer) Experiment {
	t.Helper()
	src, err := os.ReadFile("../../specs/setup-quorum-chaos.yaml")
	if err != nil {
		t.Fatal(err)
	}
	setup, err := spec.ParseSetup(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return Experiment{
		Chain:   setup.Chain,
		Config:  setup.Config,
		Traces:  []*workloads.Trace{workloads.NativeConstant(50, 60*time.Second)},
		Seed:    setup.Seed,
		Tail:    180 * time.Second, // cover the full fault schedule (through 220s)
		Faults:  setup.Faults,
		Retry:   setup.Retry,
		Trace:   buf,
		Metrics: true,
	}
}

// TestTraceDeterminism is the observability determinism guarantee: two
// runs of the quorum-chaos spec with the same seed must produce
// byte-identical traces, fault events and registry samples included.
func TestTraceDeterminism(t *testing.T) {
	run := func() []byte {
		var zipped bytes.Buffer
		gz := gzip.NewWriter(&zipped)
		exp := tracedChaosExperiment(t, gz)
		out, err := Run(exp)
		if err != nil {
			t.Fatal(err)
		}
		if out.TraceEvents == 0 {
			t.Fatal("no trace events emitted")
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := gzip.NewReader(bytes.NewReader(zipped.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return plain
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		// Find the first divergent line for a useful failure message.
		la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
		for i := range la {
			if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
				t.Fatalf("traces diverge at line %d:\n%s\n%s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("traces diverge in length: %d vs %d bytes", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"kind":"fault"`)) {
		t.Fatal("trace has no fault events despite the chaos schedule")
	}
	if !bytes.Contains(a, []byte(`"kind":"sample"`)) {
		t.Fatal("trace has no registry samples despite --metrics")
	}
	if !bytes.Contains(a, []byte(`"kind":"retry"`)) {
		t.Fatal("trace has no retry events despite faults and a retry policy")
	}
}

// TestTraceAttributionResidual is the acceptance bar for the "where time
// goes" report: on a real traced run, every committed transaction's
// latency decomposes into network/mempool/consensus/execution with less
// than 5% unattributed residual.
func TestTraceAttributionResidual(t *testing.T) {
	var buf bytes.Buffer
	exp := tracedChaosExperiment(t, &buf)
	out, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Committed == 0 || tr.Committed != out.Summary.Committed {
		t.Fatalf("trace committed %d, engine committed %d", tr.Committed, out.Summary.Committed)
	}
	if tr.Submitted != out.Summary.Submitted {
		t.Fatalf("trace submitted %d, engine submitted %d", tr.Submitted, out.Summary.Submitted)
	}
	att := obs.Attribute(tr)
	if att.Committed != tr.Committed {
		t.Fatalf("attribution covers %d of %d committed txs", att.Committed, tr.Committed)
	}
	if att.MaxResidualShare >= 0.05 {
		t.Fatalf("max residual %.2f%% of per-tx latency, want <5%%", att.MaxResidualShare*100)
	}
	var share float64
	for _, c := range att.Components {
		share += c.Share
	}
	if share < 0.95 || share > 1.0001 {
		t.Fatalf("component shares sum to %.3f, want ~1", share)
	}
	// The metrics registry must have sampled the whole run.
	if out.Metrics == nil || len(out.Metrics.TimesS) == 0 {
		t.Fatal("metrics snapshot missing")
	}
	if len(out.Links) == 0 {
		t.Fatal("link traffic aggregate missing")
	}
}

// TestMetricsDoNotPerturbTheRun: attaching the registry, tracer and
// progress ticker must not change simulation outcomes — observability is
// read-only.
func TestMetricsDoNotPerturbTheRun(t *testing.T) {
	base := func() Experiment {
		return Experiment{
			Chain:      "quorum",
			Config:     configs.Devnet,
			Traces:     []*workloads.Trace{workloads.NativeConstant(50, 20*time.Second)},
			Seed:       7,
			Tail:       60 * time.Second,
			ScaleNodes: 2,
		}
	}
	plain, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	exp := base()
	exp.Metrics = true
	exp.Trace = io.Discard
	exp.ProgressEvery = 5 * time.Second
	var ticks int
	exp.Progress = func(Progress) { ticks++ }
	observed, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Summary.Committed != observed.Summary.Committed ||
		plain.Summary.ThroughputTPS != observed.Summary.ThroughputTPS ||
		plain.Blocks != observed.Blocks {
		t.Fatalf("observability changed the run: %+v vs %+v", plain.Summary, observed.Summary)
	}
	if ticks == 0 {
		t.Fatal("progress callback never fired")
	}
}
