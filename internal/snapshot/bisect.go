package snapshot

import (
	"fmt"
	"strings"
	"time"
)

// SectionDiff is one subsystem whose digests differ at the divergent
// checkpoint, with the first divergent field pinpointed.
type SectionDiff struct {
	Name    string
	DigestA uint64
	DigestB uint64
	Field   string // first divergent field label ("" if only presence differs)
	ValueA  string
	ValueB  string
}

// BisectReport is the result of comparing two checkpointed runs.
type BisectReport struct {
	Identical bool
	Compared  int           // checkpoints compared pairwise
	Interval  time.Duration // cadence the compared checkpoints were recorded at

	// Divergence window: state was identical at WindowStart (exclusive
	// lower bound; -1 if the very first checkpoint already differs) and
	// first differs at WindowEnd.
	WindowStart time.Duration
	WindowEnd   time.Duration
	Divergent   []SectionDiff

	// Warnings carries non-fatal oddities (spec-hash or seed mismatch,
	// unpaired checkpoints).
	Warnings []string
}

func firstFieldDiff(a, b []byte) (label, va, vb string) {
	fa, errA := DecodePayload(a)
	fb, errB := DecodePayload(b)
	if errA != nil || errB != nil {
		return "", "<undecodable>", "<undecodable>"
	}
	n := len(fa)
	if len(fb) < n {
		n = len(fb)
	}
	for i := 0; i < n; i++ {
		if !fa[i].equal(fb[i]) {
			return fa[i].Label, fa[i].Value(), fb[i].Value()
		}
	}
	if len(fa) != len(fb) {
		return "", fmt.Sprintf("%d fields", len(fa)), fmt.Sprintf("%d fields", len(fb))
	}
	return "", "", ""
}

// compareFiles returns the divergent sections of two same-vtime
// checkpoints, in file (registration) order.
func compareFiles(a, b *File) []SectionDiff {
	var diffs []SectionDiff
	seen := map[string]bool{}
	for _, sa := range a.Sections {
		seen[sa.Name] = true
		sb := b.Section(sa.Name)
		if sb == nil {
			diffs = append(diffs, SectionDiff{Name: sa.Name, DigestA: sa.Digest,
				ValueA: "present", ValueB: "missing"})
			continue
		}
		if sa.Digest == sb.Digest {
			continue
		}
		d := SectionDiff{Name: sa.Name, DigestA: sa.Digest, DigestB: sb.Digest}
		d.Field, d.ValueA, d.ValueB = firstFieldDiff(sa.Payload, sb.Payload)
		diffs = append(diffs, d)
	}
	for _, sb := range b.Sections {
		if !seen[sb.Name] {
			diffs = append(diffs, SectionDiff{Name: sb.Name, DigestB: sb.Digest,
				ValueA: "missing", ValueB: "present"})
		}
	}
	return diffs
}

// Bisect loads the checkpoints of two runs and locates the first virtual
// time at which any subsystem's state digest differs.
func Bisect(dirA, dirB string) (*BisectReport, error) {
	filesA, err := LoadDir(dirA)
	if err != nil {
		return nil, fmt.Errorf("run-a: %w", err)
	}
	filesB, err := LoadDir(dirB)
	if err != nil {
		return nil, fmt.Errorf("run-b: %w", err)
	}
	if len(filesA) == 0 || len(filesB) == 0 {
		return nil, fmt.Errorf("no checkpoints to compare (run-a has %d, run-b has %d)",
			len(filesA), len(filesB))
	}

	rep := &BisectReport{Identical: true, WindowStart: -1, WindowEnd: -1, Interval: filesA[0].Meta.Interval}
	if a, b := filesA[0].Meta, filesB[0].Meta; a.SpecHash != b.SpecHash {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("spec hash differs (%016x vs %016x): runs were not built from the same spec files", a.SpecHash, b.SpecHash))
	} else if a.Seed != b.Seed {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("seed differs (%d vs %d)", a.Seed, b.Seed))
	}

	byVT := map[time.Duration]*File{}
	for _, f := range filesB {
		byVT[f.Meta.VTime] = f
	}
	prev := time.Duration(-1)
	for _, fa := range filesA {
		fb, ok := byVT[fa.Meta.VTime]
		if !ok {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("checkpoint at %s exists only in run-a", fa.Meta.VTime))
			continue
		}
		rep.Compared++
		if diffs := compareFiles(fa, fb); len(diffs) > 0 {
			rep.Identical = false
			rep.WindowStart = prev
			rep.WindowEnd = fa.Meta.VTime
			rep.Divergent = diffs
			return rep, nil
		}
		prev = fa.Meta.VTime
	}
	for _, fb := range filesB {
		found := false
		for _, fa := range filesA {
			if fa.Meta.VTime == fb.Meta.VTime {
				found = true
				break
			}
		}
		if !found {
			rep.Warnings = append(rep.Warnings,
				fmt.Sprintf("checkpoint at %s exists only in run-b", fb.Meta.VTime))
		}
	}
	return rep, nil
}

// Format renders the report for the diablo-report bisect CLI.
func (r *BisectReport) Format() string {
	var sb strings.Builder
	for _, w := range r.Warnings {
		fmt.Fprintf(&sb, "warning: %s\n", w)
	}
	if r.Identical {
		fmt.Fprintf(&sb, "runs identical across %d checkpoints\n", r.Compared)
		return sb.String()
	}
	if r.WindowStart < 0 {
		fmt.Fprintf(&sb, "divergence before first checkpoint at %s (window: start .. %s]\n",
			r.WindowEnd, r.WindowEnd)
	} else {
		fmt.Fprintf(&sb, "divergence in virtual-time window (%s .. %s]\n",
			r.WindowStart, r.WindowEnd)
	}
	fmt.Fprintf(&sb, "divergent subsystems (%d):\n", len(r.Divergent))
	for _, d := range r.Divergent {
		fmt.Fprintf(&sb, "  %-8s digest %016x vs %016x", d.Name, d.DigestA, d.DigestB)
		if d.Field != "" {
			fmt.Fprintf(&sb, "  first diff: %s = %s vs %s", d.Field, d.ValueA, d.ValueB)
		} else if d.ValueA != "" || d.ValueB != "" {
			fmt.Fprintf(&sb, "  %s vs %s", d.ValueA, d.ValueB)
		}
		sb.WriteByte('\n')
	}
	if finer := r.Interval / 10; finer > 0 && r.WindowStart >= 0 {
		fmt.Fprintf(&sb, "narrow it: re-run both runs with --checkpoint-every=%s --checkpoint-from=%s --checkpoint-until=%s\n",
			finer, r.WindowStart, r.WindowEnd)
	}
	return sb.String()
}
