package snapshot

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// File format:
//
//	"DSNP" magic · u16 big-endian version · gzip(body)
//
// body (version 1):
//
//	meta payload (length-prefixed labeled fields)
//	u16 section count
//	per section: name · payload length · payload · fnv64 digest
//
// Version 2 adds delta encoding: a flag byte follows each section name;
// flag 1 marks an elided section whose payload byte-for-byte equals the
// same section of the base checkpoint named by the meta's delta_base
// virtual time — only the digest is stored, and the payload is resolved
// from the base file on read. Encode emits version 2 only when at least
// one section is elided, so full checkpoints stay byte-identical to the
// version-1 format.
//
// The gzip writer is created with a zero ModTime (the zero value of
// gzip.Header, same trick as internal/obs), so a checkpoint's bytes are a
// pure function of simulation state.
const (
	magic   = "DSNP"
	Version = 1
	// VersionDelta is the delta-encoded format: unchanged sections are
	// stored as digests only, resolved against the delta_base checkpoint.
	VersionDelta = 2
)

// Meta describes the run a checkpoint belongs to. SpecHash ties a
// checkpoint to the exact setup+workload YAML pair; resume and bisect
// refuse to mix runs of different specs.
type Meta struct {
	VTime    time.Duration // virtual time of the checkpoint
	Seed     int64
	SpecHash uint64        // FNV-1a over raw setup+workload spec bytes
	Interval time.Duration // checkpoint cadence of the recording run
	Chain    string
	// DeltaBase is the virtual time of the checkpoint this file's elided
	// sections resolve against (version 2 only; zero = no base).
	DeltaBase time.Duration
}

// Section is one subsystem's serialized state. An Elided section carries
// no payload of its own: its bytes equal the same-named section of the
// delta-base checkpoint (the digest still describes the full payload, so
// resolution is verified).
type Section struct {
	Name    string
	Payload []byte
	Digest  uint64
	Elided  bool
}

// File is a decoded checkpoint.
type File struct {
	Meta     Meta
	Sections []Section
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

func (m Meta) encode() []byte {
	e := NewEncoder()
	e.Dur("vtime", m.VTime)
	e.I64("seed", m.Seed)
	e.U64("spec_hash", m.SpecHash)
	e.Dur("interval", m.Interval)
	e.Str("chain", m.Chain)
	// delta_base rides only in version-2 files, keeping the version-1
	// byte format pinned.
	if m.DeltaBase > 0 {
		e.Dur("delta_base", m.DeltaBase)
	}
	return e.Payload()
}

func decodeMeta(payload []byte) (Meta, error) {
	d, err := NewDecoder(payload)
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if f, ok := d.Lookup("vtime"); ok {
		m.VTime = time.Duration(f.I)
	}
	if f, ok := d.Lookup("seed"); ok {
		m.Seed = f.I
	}
	if f, ok := d.Lookup("spec_hash"); ok {
		m.SpecHash = f.U
	}
	if f, ok := d.Lookup("interval"); ok {
		m.Interval = time.Duration(f.I)
	}
	if f, ok := d.Lookup("chain"); ok {
		m.Chain = f.S
	}
	if f, ok := d.Lookup("delta_base"); ok {
		m.DeltaBase = time.Duration(f.I)
	}
	return m, nil
}

// Encode serializes a checkpoint to its canonical byte form.
func (f *File) Encode() ([]byte, error) {
	var body bytes.Buffer
	writeU16 := func(v uint16) {
		var tmp [2]byte
		binary.BigEndian.PutUint16(tmp[:], v)
		body.Write(tmp[:])
	}
	writeU32 := func(v uint32) {
		var tmp [4]byte
		binary.BigEndian.PutUint32(tmp[:], v)
		body.Write(tmp[:])
	}
	writeU64 := func(v uint64) {
		var tmp [8]byte
		binary.BigEndian.PutUint64(tmp[:], v)
		body.Write(tmp[:])
	}

	meta := f.Meta.encode()
	writeU32(uint32(len(meta)))
	body.Write(meta)

	if len(f.Sections) > 0xffff {
		return nil, fmt.Errorf("snapshot: %d sections exceed format limit", len(f.Sections))
	}
	version := uint16(Version)
	for _, s := range f.Sections {
		if s.Elided {
			version = VersionDelta
			break
		}
	}
	writeU16(uint16(len(f.Sections)))
	for _, s := range f.Sections {
		if len(s.Name) > 0xff {
			return nil, fmt.Errorf("snapshot: section name %q too long", s.Name)
		}
		body.WriteByte(byte(len(s.Name)))
		body.WriteString(s.Name)
		if version == VersionDelta {
			if s.Elided {
				body.WriteByte(1)
				writeU64(s.Digest)
				continue
			}
			body.WriteByte(0)
		}
		writeU32(uint32(len(s.Payload)))
		body.Write(s.Payload)
		writeU64(s.Digest)
	}

	var out bytes.Buffer
	out.WriteString(magic)
	var ver [2]byte
	binary.BigEndian.PutUint16(ver[:], version)
	out.Write(ver[:])
	zw := gzip.NewWriter(&out) // zero Header => zero ModTime => deterministic
	if _, err := zw.Write(body.Bytes()); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decode parses a checkpoint from its byte form. All errors are returned,
// never panicked, including on truncated and corrupted input.
func Decode(b []byte) (*File, error) {
	if len(b) < len(magic)+2 {
		return nil, fmt.Errorf("snapshot: input too short (%d bytes)", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", b[:len(magic)])
	}
	ver := binary.BigEndian.Uint16(b[len(magic):])
	if ver != Version && ver != VersionDelta {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d or %d)", ver, Version, VersionDelta)
	}
	zr, err := gzip.NewReader(bytes.NewReader(b[len(magic)+2:]))
	if err != nil {
		return nil, fmt.Errorf("snapshot: bad gzip stream: %w", err)
	}
	body, err := io.ReadAll(io.LimitReader(zr, maxLen))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("snapshot: bad gzip stream: %w", err)
	}

	r := &byteReader{b: body}
	u32 := func() (uint32, error) {
		raw, err := r.take(4)
		if err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(raw), nil
	}

	metaLen, err := u32()
	if err != nil {
		return nil, err
	}
	metaRaw, err := r.take(uint64(metaLen))
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(metaRaw)
	if err != nil {
		return nil, err
	}

	rawCount, err := r.take(2)
	if err != nil {
		return nil, err
	}
	count := int(binary.BigEndian.Uint16(rawCount))
	f := &File{Meta: meta, Sections: make([]Section, 0, count)}
	for i := 0; i < count; i++ {
		nameLen, err := r.byte()
		if err != nil {
			return nil, err
		}
		nameRaw, err := r.take(uint64(nameLen))
		if err != nil {
			return nil, err
		}
		if ver == VersionDelta {
			flag, err := r.byte()
			if err != nil {
				return nil, err
			}
			if flag == 1 {
				digRaw, err := r.take(8)
				if err != nil {
					return nil, err
				}
				f.Sections = append(f.Sections, Section{
					Name:   string(nameRaw),
					Digest: binary.BigEndian.Uint64(digRaw),
					Elided: true,
				})
				continue
			}
		}
		payLen, err := u32()
		if err != nil {
			return nil, err
		}
		payload, err := r.take(uint64(payLen))
		if err != nil {
			return nil, err
		}
		digRaw, err := r.take(8)
		if err != nil {
			return nil, err
		}
		s := Section{
			Name:    string(nameRaw),
			Payload: append([]byte(nil), payload...),
			Digest:  binary.BigEndian.Uint64(digRaw),
		}
		if got := Digest(s.Payload); got != s.Digest {
			return nil, fmt.Errorf("snapshot: section %q digest mismatch (stored %016x, computed %016x)",
				s.Name, s.Digest, got)
		}
		f.Sections = append(f.Sections, s)
	}
	if !r.eof() {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after sections", len(body)-r.off)
	}
	return f, nil
}

// FileName is the canonical checkpoint name for a virtual time; zero-padded
// milliseconds so lexical order is virtual-time order.
func FileName(vt time.Duration) string {
	return fmt.Sprintf("cp-%012dms.snap", vt.Milliseconds())
}

// WriteFile encodes and writes a checkpoint into dir.
func (f *File) WriteFile(dir string) (string, error) {
	b, err := f.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(f.Meta.VTime))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadFile loads and decodes one checkpoint. Elided sections of a
// delta-encoded file are returned as-is (digest only, no payload); use
// ReadResolved when the payloads are needed.
func ReadFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// resolveAgainst fills f's elided sections from base, verifying each
// resolved payload against the stored digest. Delta encoding only elides
// a section when the previous checkpoint carried it in full, so the
// immediate base file always has the payload.
func (f *File) resolveAgainst(base *File) error {
	for i := range f.Sections {
		s := &f.Sections[i]
		if !s.Elided {
			continue
		}
		bs := base.Section(s.Name)
		if bs == nil || bs.Elided {
			return fmt.Errorf("snapshot: elided section %q has no full copy in base checkpoint %s", s.Name, base.Meta.VTime)
		}
		if got := Digest(bs.Payload); got != s.Digest {
			return fmt.Errorf("snapshot: section %q resolved from base checkpoint %s has digest %016x, want %016x",
				s.Name, base.Meta.VTime, got, s.Digest)
		}
		s.Payload = append([]byte(nil), bs.Payload...)
		s.Elided = false
	}
	return nil
}

// ReadResolved loads one checkpoint and, when it is delta-encoded,
// resolves its elided sections from the delta-base checkpoint in the same
// directory.
func ReadResolved(path string) (*File, error) {
	f, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	elided := false
	for _, s := range f.Sections {
		if s.Elided {
			elided = true
			break
		}
	}
	if !elided {
		return f, nil
	}
	basePath := filepath.Join(filepath.Dir(path), FileName(f.Meta.DeltaBase))
	base, err := ReadFile(basePath)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading delta base of %s: %w", path, err)
	}
	if err := f.resolveAgainst(base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// LoadDir loads every *.snap checkpoint in dir, sorted by virtual time,
// resolving delta-encoded files against their base checkpoints.
func LoadDir(dir string) ([]*File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*File
	byVTime := map[time.Duration]*File{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".snap" {
			continue
		}
		f, err := ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		byVTime[f.Meta.VTime] = f
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Meta.VTime < files[j].Meta.VTime })
	for _, f := range files {
		needs := false
		for _, s := range f.Sections {
			if s.Elided {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		base := byVTime[f.Meta.DeltaBase]
		if base == nil {
			return nil, fmt.Errorf("snapshot: checkpoint %s in %s needs delta base %s, which is not in the directory",
				f.Meta.VTime, dir, f.Meta.DeltaBase)
		}
		if err := f.resolveAgainst(base); err != nil {
			return nil, err
		}
	}
	return files, nil
}
