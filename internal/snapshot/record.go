package snapshot

import (
	"fmt"
	"os"
	"time"
)

// Stater is implemented by every checkpointable subsystem. SnapshotState
// must write the subsystem's state as labeled fields in a fixed source
// order — same state, same bytes.
type Stater interface {
	SnapshotState(*Encoder)
}

// Restorer is optionally implemented alongside Stater. On resume the run
// is deterministically fast-forwarded to the checkpoint's virtual time and
// RestoreState is called with the stored section; the subsystem reconciles
// the stored state against its live state and returns an error naming the
// first divergent field. (Pending scheduler events are closures, so state
// cannot be injected — it is rebuilt by re-execution and then proven.)
type Restorer interface {
	RestoreState(*Decoder) error
}

// StateFunc adapts a capture function to Stater.
type StateFunc func(*Encoder)

// SnapshotState implements Stater.
func (f StateFunc) SnapshotState(e *Encoder) { f(e) }

// Reconcile re-captures the subsystem's live state and compares it
// field-by-field against the stored section, reporting the first
// divergence. Subsystems implement RestoreState as a one-liner around it.
func Reconcile(st Stater, dec *Decoder) error {
	e := NewEncoder()
	st.SnapshotState(e)
	live, err := DecodePayload(e.Payload())
	if err != nil {
		return fmt.Errorf("live state re-encode: %w", err)
	}
	stored := dec.Fields()
	n := len(stored)
	if len(live) < n {
		n = len(live)
	}
	for i := 0; i < n; i++ {
		if !stored[i].equal(live[i]) {
			return fmt.Errorf("field %q: checkpoint has %s, resumed run has %s",
				stored[i].Label, stored[i].Value(), live[i].Value())
		}
	}
	if len(stored) != len(live) {
		return fmt.Errorf("field count: checkpoint has %d, resumed run has %d", len(stored), len(live))
	}
	return nil
}

// Recorder captures per-subsystem sections into checkpoint files.
// Subsystems are serialized in registration order, which fixes both the
// file layout and the bisect report ordering.
type Recorder struct {
	meta    Meta
	dir     string
	names   []string
	staters []Stater

	// Delta enables delta encoding: a section whose payload is
	// byte-identical to the previous checkpoint's is stored as a digest
	// only (format version 2). Delta files alternate with full files —
	// a section is elided only when the previous checkpoint carried every
	// section in full — so any delta file resolves against exactly its
	// immediate predecessor.
	Delta bool

	// prevDigests remembers the last written checkpoint's section digests
	// (delta encoding); prevVTime is its virtual time, prevWasDelta
	// whether it elided anything.
	prevDigests  map[string]uint64
	prevVTime    time.Duration
	prevWasDelta bool

	// Written accumulates the paths of checkpoints written so far;
	// writtenDelta marks which of them are delta-encoded.
	Written      []string
	writtenDelta []bool
}

// NewRecorder returns a recorder that writes checkpoints for the described
// run into dir.
func NewRecorder(meta Meta, dir string) *Recorder {
	return &Recorder{meta: meta, dir: dir}
}

// Register adds a subsystem under a unique section name.
func (r *Recorder) Register(name string, st Stater) {
	for _, n := range r.names {
		if n == name {
			panic(fmt.Sprintf("snapshot: duplicate section %q", name))
		}
	}
	r.names = append(r.names, name)
	r.staters = append(r.staters, st)
}

// Capture serializes every registered subsystem at the given virtual time.
func (r *Recorder) Capture(vt time.Duration) *File {
	f := &File{Meta: r.meta}
	f.Meta.VTime = vt
	for i, st := range r.staters {
		e := NewEncoder()
		st.SnapshotState(e)
		payload := e.Payload()
		f.Sections = append(f.Sections, Section{
			Name:    r.names[i],
			Payload: payload,
			Digest:  Digest(payload),
		})
	}
	return f
}

// WriteCheckpoint captures and persists one checkpoint, delta-encoding
// unchanged sections against the previous checkpoint when Delta is on.
func (r *Recorder) WriteCheckpoint(vt time.Duration) (string, error) {
	f := r.Capture(vt)
	delta := false
	if r.Delta && r.prevDigests != nil && !r.prevWasDelta {
		for i := range f.Sections {
			s := &f.Sections[i]
			if prev, ok := r.prevDigests[s.Name]; ok && prev == s.Digest {
				s.Payload = nil
				s.Elided = true
				delta = true
			}
		}
		if delta {
			f.Meta.DeltaBase = r.prevVTime
		}
	}
	if r.Delta {
		digests := make(map[string]uint64, len(f.Sections))
		for _, s := range f.Sections {
			digests[s.Name] = s.Digest
		}
		r.prevDigests = digests
		r.prevVTime = vt
		r.prevWasDelta = delta
	}
	path, err := f.WriteFile(r.dir)
	if err != nil {
		return "", err
	}
	r.Written = append(r.Written, path)
	r.writtenDelta = append(r.writtenDelta, delta)
	return path, nil
}

// Prune deletes the oldest written checkpoints until at most keep remain,
// so multi-hour runs do not accumulate unbounded .snap files. When the
// oldest survivor is delta-encoded, its base (the file just before it)
// survives too, so every remaining checkpoint stays resolvable. Written
// is trimmed to the surviving files (it is appended in virtual-time
// order, so the head is always the oldest). keep <= 0 retains everything.
func (r *Recorder) Prune(keep int) error {
	if keep <= 0 || len(r.Written) <= keep {
		return nil
	}
	cut := len(r.Written) - keep
	if len(r.writtenDelta) == len(r.Written) && r.writtenDelta[cut] {
		cut--
	}
	if cut <= 0 {
		return nil
	}
	for _, path := range r.Written[:cut] {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("snapshot: pruning checkpoint: %w", err)
		}
	}
	r.Written = append(r.Written[:0:0], r.Written[cut:]...)
	if len(r.writtenDelta) >= cut {
		r.writtenDelta = append(r.writtenDelta[:0:0], r.writtenDelta[cut:]...)
	}
	return nil
}

// Verify reconciles a stored checkpoint against the live (fast-forwarded)
// state of every registered subsystem. The run must be at exactly
// f.Meta.VTime when this is called.
func (r *Recorder) Verify(f *File) error {
	for _, sec := range f.Sections {
		if sec.Elided {
			return fmt.Errorf("snapshot: section %q is delta-encoded; resolve the checkpoint (ReadResolved) before verifying", sec.Name)
		}
		idx := -1
		for i, n := range r.names {
			if n == sec.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("snapshot: checkpoint section %q has no registered subsystem", sec.Name)
		}
		dec, err := NewDecoder(sec.Payload)
		if err != nil {
			return fmt.Errorf("section %q: %w", sec.Name, err)
		}
		st := r.staters[idx]
		if rst, ok := st.(Restorer); ok {
			err = rst.RestoreState(dec)
		} else {
			err = Reconcile(st, dec)
		}
		if err != nil {
			return fmt.Errorf("resume verification failed in %q at %s: %w", sec.Name, f.Meta.VTime, err)
		}
	}
	return nil
}
