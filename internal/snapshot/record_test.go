package snapshot

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// counter is a minimal Stater whose state is mutable between captures.
type counter struct {
	n    uint64
	name string
}

func (c *counter) SnapshotState(e *Encoder) {
	e.U64("count", c.n)
	e.Str("name", c.name)
}

func TestRecorderWriteReadVerify(t *testing.T) {
	dir := t.TempDir()
	c := &counter{n: 3, name: "pool"}
	rec := NewRecorder(Meta{Seed: 7, SpecHash: 11, Interval: 25 * time.Second, Chain: "quorum"}, dir)
	rec.Register("pool", c)

	path, err := rec.WriteCheckpoint(50 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "cp-000000050000ms.snap" {
		t.Fatalf("unexpected checkpoint name %s", filepath.Base(path))
	}
	if len(rec.Written) != 1 || rec.Written[0] != path {
		t.Fatalf("Written = %v", rec.Written)
	}

	f, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.VTime != 50*time.Second || f.Meta.Seed != 7 || f.Meta.Chain != "quorum" {
		t.Fatalf("meta round-trip: %+v", f.Meta)
	}

	// Same live state reconciles cleanly.
	if err := rec.Verify(f); err != nil {
		t.Fatalf("verify against unchanged state: %v", err)
	}

	// A mutated live state fails naming the divergent field and values.
	c.n = 4
	err = rec.Verify(f)
	if err == nil {
		t.Fatal("verify accepted divergent state")
	}
	for _, want := range []string{`"pool"`, `"count"`, "checkpoint has 3", "resumed run has 4"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestRecorderDuplicateSectionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate section name accepted")
		}
	}()
	rec := NewRecorder(Meta{}, "")
	rec.Register("pool", &counter{})
	rec.Register("pool", &counter{})
}

func TestVerifyUnknownSection(t *testing.T) {
	rec := NewRecorder(Meta{}, "")
	rec.Register("pool", &counter{})
	stranger := NewRecorder(Meta{}, "")
	stranger.Register("ghost", &counter{})
	if err := rec.Verify(stranger.Capture(time.Second)); err == nil {
		t.Fatal("checkpoint with unregistered section accepted")
	}
}

func TestReconcileFieldCountMismatch(t *testing.T) {
	e := NewEncoder()
	e.U64("count", 3)
	dec, err := NewDecoder(e.Payload())
	if err != nil {
		t.Fatal(err)
	}
	err = Reconcile(&counter{n: 3, name: "x"}, dec)
	if err == nil || !strings.Contains(err.Error(), "field count") {
		t.Fatalf("want field-count error, got %v", err)
	}
}

func TestLoadDirSortsByVTime(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Meta{Seed: 1}, dir)
	rec.Register("pool", &counter{})
	for _, vt := range []time.Duration{75 * time.Second, 25 * time.Second, 50 * time.Second} {
		if _, err := rec.WriteCheckpoint(vt); err != nil {
			t.Fatal(err)
		}
	}
	files, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("loaded %d checkpoints", len(files))
	}
	for i, want := range []time.Duration{25 * time.Second, 50 * time.Second, 75 * time.Second} {
		if files[i].Meta.VTime != want {
			t.Fatalf("file %d at %s, want %s", i, files[i].Meta.VTime, want)
		}
	}
}

func TestRecorderPruneRetention(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Meta{Seed: 1}, dir)
	rec.Register("pool", &counter{})

	// Simulate the capture loop: write then prune, as armCheckpoints does.
	for i := 1; i <= 5; i++ {
		if _, err := rec.WriteCheckpoint(time.Duration(i) * 25 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := rec.Prune(2); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.Written) != 2 {
		t.Fatalf("Written retained %d paths, want 2: %v", len(rec.Written), rec.Written)
	}
	files, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("%d checkpoints on disk, want 2", len(files))
	}
	// Always the newest survive.
	for i, want := range []time.Duration{100 * time.Second, 125 * time.Second} {
		if files[i].Meta.VTime != want {
			t.Fatalf("survivor %d at %s, want %s", i, files[i].Meta.VTime, want)
		}
	}

	// keep <= 0 and keep >= len are no-ops.
	if err := rec.Prune(0); err != nil {
		t.Fatal(err)
	}
	if err := rec.Prune(10); err != nil {
		t.Fatal(err)
	}
	if len(rec.Written) != 2 {
		t.Fatalf("no-op prune changed Written: %v", rec.Written)
	}
}
