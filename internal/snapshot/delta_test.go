package snapshot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// deltaRecorder returns a two-section recorder whose "hot" section
// changes every capture and whose "cold" section never does — the shape
// delta encoding exists for.
func deltaRecorder(t *testing.T, dir string) (*Recorder, *counter) {
	t.Helper()
	hot := &counter{n: 0, name: "hot"}
	rec := NewRecorder(Meta{Seed: 7, SpecHash: 11, Interval: 25 * time.Second, Chain: "quorum"}, dir)
	rec.Delta = true
	rec.Register("hot", hot)
	rec.Register("cold", &counter{n: 99, name: "cold"})
	return rec, hot
}

// TestDeltaAlternatesFullAndElided locks in the file-level alternation:
// the first checkpoint is always full, the second elides the unchanged
// section against it, and the third — whose predecessor was a delta —
// is full again, so every delta file resolves from exactly its
// immediate predecessor.
func TestDeltaAlternatesFullAndElided(t *testing.T) {
	dir := t.TempDir()
	rec, hot := deltaRecorder(t, dir)
	for i, vt := range []time.Duration{25 * time.Second, 50 * time.Second, 75 * time.Second} {
		hot.n = uint64(i)
		if _, err := rec.WriteCheckpoint(vt); err != nil {
			t.Fatal(err)
		}
	}

	wantElided := []bool{false, true, false}
	for i, path := range rec.Written {
		f, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cold := f.Section("cold")
		if cold.Elided != wantElided[i] {
			t.Errorf("checkpoint %d: cold elided = %v, want %v", i, cold.Elided, wantElided[i])
		}
		if f.Section("hot").Elided {
			t.Errorf("checkpoint %d: the always-changing hot section was elided", i)
		}
	}

	// The delta file names its base and is smaller than the full one.
	f1, err := ReadFile(rec.Written[1])
	if err != nil {
		t.Fatal(err)
	}
	if f1.Meta.DeltaBase != 25*time.Second {
		t.Fatalf("DeltaBase = %s, want 25s", f1.Meta.DeltaBase)
	}

	// ReadResolved restores the elided payload, verified by digest, and
	// the resolved file verifies against matching live state.
	rf, err := ReadResolved(rec.Written[1])
	if err != nil {
		t.Fatal(err)
	}
	cold := rf.Section("cold")
	if cold.Elided || len(cold.Payload) == 0 {
		t.Fatal("ReadResolved left the cold section elided")
	}
	if Digest(cold.Payload) != cold.Digest {
		t.Fatal("resolved payload does not match the stored digest")
	}
	hot.n = 1
	if err := rec.Verify(rf); err != nil {
		t.Fatalf("resolved checkpoint failed verification: %v", err)
	}
}

func TestVerifyRejectsUnresolvedDelta(t *testing.T) {
	dir := t.TempDir()
	rec, _ := deltaRecorder(t, dir)
	for _, vt := range []time.Duration{25 * time.Second, 50 * time.Second} {
		if _, err := rec.WriteCheckpoint(vt); err != nil {
			t.Fatal(err)
		}
	}
	f, err := ReadFile(rec.Written[1])
	if err != nil {
		t.Fatal(err)
	}
	err = rec.Verify(f)
	if err == nil || !strings.Contains(err.Error(), "ReadResolved") {
		t.Fatalf("Verify on an unresolved delta = %v, want ReadResolved hint", err)
	}
}

func TestDeltaRoundTripBytes(t *testing.T) {
	// A hand-built delta file must encode/decode losslessly, and the
	// elided section must carry no payload bytes.
	f := &File{
		Meta: Meta{VTime: 50 * time.Second, Seed: 1, Chain: "quorum", DeltaBase: 25 * time.Second},
		Sections: []Section{
			{Name: "hot", Payload: []byte{1, 2, 3}, Digest: Digest([]byte{1, 2, 3})},
			{Name: "cold", Digest: 0xdeadbeef, Elided: true},
		},
	}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b[4] != 0 || b[5] != VersionDelta {
		t.Fatalf("version bytes = %d %d, want 0 %d", b[4], b[5], VersionDelta)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Meta.DeltaBase != 25*time.Second {
		t.Fatalf("DeltaBase round-trip = %s", g.Meta.DeltaBase)
	}
	cold := g.Section("cold")
	if !cold.Elided || cold.Digest != 0xdeadbeef || len(cold.Payload) != 0 {
		t.Fatalf("elided section round-trip = %+v", cold)
	}
	// A file with no elided sections still encodes as version 1.
	full := &File{
		Meta:     Meta{VTime: 25 * time.Second, Seed: 1, Chain: "quorum"},
		Sections: []Section{{Name: "hot", Payload: []byte{1}, Digest: Digest([]byte{1})}},
	}
	fb, err := full.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if fb[5] != Version {
		t.Fatalf("full file encoded as version %d, want %d", fb[5], Version)
	}
}

func TestResolveDetectsWrongBase(t *testing.T) {
	delta := &File{
		Meta: Meta{VTime: 50 * time.Second, DeltaBase: 25 * time.Second},
		Sections: []Section{
			{Name: "cold", Digest: Digest([]byte("expected")), Elided: true},
		},
	}
	base := &File{
		Meta: Meta{VTime: 25 * time.Second},
		Sections: []Section{
			{Name: "cold", Payload: []byte("tampered"), Digest: Digest([]byte("tampered"))},
		},
	}
	err := delta.resolveAgainst(base)
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("wrong-base resolution = %v, want digest error", err)
	}
	missing := &File{Meta: Meta{VTime: 25 * time.Second}}
	err = delta.resolveAgainst(missing)
	if err == nil || !strings.Contains(err.Error(), "no full copy") {
		t.Fatalf("missing-section resolution = %v, want no-full-copy error", err)
	}
}

func TestPruneKeepsDeltaBase(t *testing.T) {
	dir := t.TempDir()
	rec, hot := deltaRecorder(t, dir)
	for i, vt := range []time.Duration{25 * time.Second, 50 * time.Second, 75 * time.Second, 100 * time.Second} {
		hot.n = uint64(i)
		if _, err := rec.WriteCheckpoint(vt); err != nil {
			t.Fatal(err)
		}
	}
	// Files: 25s full, 50s delta(25s), 75s full, 100s delta(75s).
	// keep=2 would cut at 75s, which is full: 25s and 50s go.
	if err := rec.Prune(2); err != nil {
		t.Fatal(err)
	}
	if len(rec.Written) != 2 || filepath.Base(rec.Written[0]) != FileName(75*time.Second) {
		t.Fatalf("Written after prune = %v", rec.Written)
	}
	// Everything left must still load and resolve.
	files, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("LoadDir found %d files, want 2", len(files))
	}

	// Now keep=1: the oldest survivor would be the 100s delta, so its
	// 75s base must survive too.
	if err := rec.Prune(1); err != nil {
		t.Fatal(err)
	}
	if len(rec.Written) != 2 {
		t.Fatalf("prune dropped the delta base: %v", rec.Written)
	}
	if _, err := ReadResolved(rec.Written[1]); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDirMissingBaseErrors(t *testing.T) {
	dir := t.TempDir()
	rec, hot := deltaRecorder(t, dir)
	for i, vt := range []time.Duration{25 * time.Second, 50 * time.Second} {
		hot.n = uint64(i)
		if _, err := rec.WriteCheckpoint(vt); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(rec.Written[0]); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "needs delta base") {
		t.Fatalf("LoadDir with missing base = %v, want needs-delta-base error", err)
	}
	_, err = ReadResolved(rec.Written[1])
	if err == nil || !strings.Contains(err.Error(), "reading delta base") {
		t.Fatalf("ReadResolved with missing base = %v", err)
	}
}
