package snapshot

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testFile builds the fixed checkpoint used by the golden-file test and
// the fuzz seed corpus. Do not change it casually: its encoding is pinned
// by testdata/golden-v1.snap, and changing the bytes means a format
// version bump.
func testFile() *File {
	e := NewEncoder()
	e.U64("height", 42)
	e.I64("leader", -1)
	e.F64("rate", 3.5)
	e.Str("chain", "quorum")
	e.Bytes("root", []byte{0xde, 0xad, 0xbe, 0xef})
	e.Bool("crashed", true)
	e.Dur("uptime", 90*time.Second)
	secA := e.Payload()

	e2 := NewEncoder()
	e2.U64("pending", 7)
	e2.U64("entries_digest", 0x123456789abcdef0)
	secB := e2.Payload()

	return &File{
		Meta: Meta{
			VTime:    50 * time.Second,
			Seed:     7,
			SpecHash: 0xfeedface,
			Interval: 25 * time.Second,
			Chain:    "quorum",
		},
		Sections: []Section{
			{Name: "chain", Payload: secA, Digest: Digest(secA)},
			{Name: "pool", Payload: secB, Digest: Digest(secB)},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := testFile()
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != f.Meta {
		t.Fatalf("meta round-trip: %+v vs %+v", got.Meta, f.Meta)
	}
	if len(got.Sections) != 2 {
		t.Fatalf("sections: %d", len(got.Sections))
	}
	for i, s := range got.Sections {
		if s.Name != f.Sections[i].Name || !bytes.Equal(s.Payload, f.Sections[i].Payload) || s.Digest != f.Sections[i].Digest {
			t.Fatalf("section %d did not round-trip", i)
		}
	}

	fields, err := DecodePayload(got.Section("chain").Payload)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		label, value string
	}{
		{"height", "42"},
		{"leader", "-1"},
		{"rate", "3.5"},
		{"chain", `"quorum"`},
		{"root", "deadbeef"},
		{"crashed", "true"},
		{"uptime", "1m30s"},
	}
	if len(fields) != len(want) {
		t.Fatalf("%d fields, want %d", len(fields), len(want))
	}
	for i, w := range want {
		if fields[i].Label != w.label || fields[i].Value() != w.value {
			t.Fatalf("field %d = %s/%s, want %s/%s",
				i, fields[i].Label, fields[i].Value(), w.label, w.value)
		}
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	a, err := testFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same state differ")
	}
}

// TestGoldenEncoding pins the version-1 byte format. If this fails the
// on-disk format changed: bump Version and regenerate the golden file
// with UPDATE_SNAPSHOT_GOLDEN=1.
func TestGoldenEncoding(t *testing.T) {
	path := filepath.Join("testdata", "golden-v1.snap")
	got, err := testFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding differs from pinned golden file (%d vs %d bytes): the checkpoint format changed without a version bump", len(got), len(want))
	}
	f, err := Decode(want)
	if err != nil {
		t.Fatalf("golden file no longer decodes: %v", err)
	}
	if f.Meta.VTime != 50*time.Second || f.Section("pool") == nil {
		t.Fatal("golden file decoded to unexpected content")
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.F64("negzero", math.Copysign(0, -1))
	e.F64("inf", math.Inf(1))
	e.F64("nan", math.NaN())
	fields, err := DecodePayload(e.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if math.Signbit(fields[0].F) != true || fields[0].F != 0 {
		t.Fatal("-0.0 did not round-trip")
	}
	if !math.IsInf(fields[1].F, 1) {
		t.Fatal("+Inf did not round-trip")
	}
	if !math.IsNaN(fields[2].F) {
		t.Fatal("NaN did not round-trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := testFile().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         nil,
		"short":         []byte("DSN"),
		"bad magic":     append([]byte("XXXX"), valid[4:]...),
		"bad version":   append([]byte("DSNP\x00\x63"), valid[6:]...),
		"bad gzip":      []byte("DSNP\x00\x01not-gzip-at-all"),
		"truncated":     valid[:len(valid)-10],
		"trailing junk": append(append([]byte(nil), valid...), 0xff),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// Flipping any single payload byte must be caught by the section digest
	// (or fail structurally) — never silently accepted, never a panic.
	for i := 6; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x40
		if f, err := Decode(mut); err == nil {
			// The flip landed in gzip padding that decompresses identically;
			// accept only if the content is bit-identical to the original.
			b2, _ := f.Encode()
			if !bytes.Equal(b2, valid) {
				t.Fatalf("flipping byte %d went undetected", i)
			}
		}
	}
}

func TestDecodePayloadErrors(t *testing.T) {
	e := NewEncoder()
	e.U64("x", 900)
	e.Str("s", "hello")
	valid := e.Payload()
	for i := 1; i < len(valid); i++ {
		if _, err := DecodePayload(valid[:i]); err == nil {
			// Some prefixes happen to be self-delimiting field sequences;
			// that is fine as long as nothing panics. Require an error only
			// for cuts inside the final string body.
			if i > len(valid)-3 {
				t.Errorf("truncation at %d decoded without error", i)
			}
		}
	}
	if _, err := DecodePayload([]byte{0x63, 0x01, 'a'}); err == nil {
		t.Error("unknown field type accepted")
	}
	if _, err := DecodePayload([]byte{TBool, 0x01, 'a', 0x02}); err == nil {
		t.Error("out-of-range bool accepted")
	}
}

// FuzzDecode is the never-panic guarantee for checkpoint parsing:
// truncated, corrupted or adversarial inputs return errors.
func FuzzDecode(f *testing.F) {
	valid, err := testFile().Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("DSNP\x00\x01"))
	f.Add([]byte{})
	e := NewEncoder()
	e.U64("a", 1)
	e.Bytes("b", bytes.Repeat([]byte{0xaa}, 100))
	f.Add(e.Payload())
	f.Fuzz(func(t *testing.T, data []byte) {
		// Neither entry point may panic or over-allocate; errors are fine.
		if file, err := Decode(data); err == nil {
			for _, s := range file.Sections {
				_, _ = DecodePayload(s.Payload)
			}
		}
		_, _ = DecodePayload(data)
	})
}

func TestHashDiscriminates(t *testing.T) {
	// Length prefixes keep concatenations from colliding.
	a := NewHash()
	a.Str("ab")
	a.Str("c")
	b := NewHash()
	b.Str("a")
	b.Str("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("hash collided on shifted concatenation")
	}
	c, d := NewHash(), NewHash()
	c.Bools([]bool{true, false})
	d.Bools([]bool{false, true})
	if c.Sum() == d.Sum() {
		t.Fatal("hash collided on bool order")
	}
}
