package snapshot

import (
	"strings"
	"testing"
	"time"
)

// writeRun writes a run's checkpoints at 25s cadence. states maps
// vtime → per-section counter values; sections are written in fixed
// order (sched, chain).
func writeRun(t *testing.T, dir string, seed int64, states map[time.Duration][2]uint64) {
	t.Helper()
	sched := &counter{name: "sched"}
	ch := &counter{name: "chain"}
	rec := NewRecorder(Meta{Seed: seed, SpecHash: 99, Interval: 25 * time.Second, Chain: "quorum"}, dir)
	rec.Register("sched", sched)
	rec.Register("chain", ch)
	vts := make([]time.Duration, 0, len(states))
	for vt := range states {
		vts = append(vts, vt)
	}
	// Map order doesn't matter: each WriteCheckpoint snapshots the values
	// set for its own vtime.
	for _, vt := range vts {
		sched.n, ch.n = states[vt][0], states[vt][1]
		if _, err := rec.WriteCheckpoint(vt); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBisectIdenticalRuns(t *testing.T) {
	states := map[time.Duration][2]uint64{
		25 * time.Second: {10, 1},
		50 * time.Second: {20, 2},
		75 * time.Second: {30, 3},
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	writeRun(t, dirA, 7, states)
	writeRun(t, dirB, 7, states)
	rep, err := Bisect(dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical || rep.Compared != 3 || len(rep.Warnings) != 0 {
		t.Fatalf("identical runs misreported: %+v", rep)
	}
	if !strings.Contains(rep.Format(), "runs identical across 3 checkpoints") {
		t.Fatalf("format: %q", rep.Format())
	}
}

func TestBisectPinpointsWindowAndSubsystem(t *testing.T) {
	// Runs agree at 25s and 50s; run B's chain section diverges at 75s.
	a := map[time.Duration][2]uint64{
		25 * time.Second:  {10, 1},
		50 * time.Second:  {20, 2},
		75 * time.Second:  {30, 3},
		100 * time.Second: {40, 4},
	}
	b := map[time.Duration][2]uint64{
		25 * time.Second:  {10, 1},
		50 * time.Second:  {20, 2},
		75 * time.Second:  {30, 9},
		100 * time.Second: {40, 10},
	}
	dirA, dirB := t.TempDir(), t.TempDir()
	writeRun(t, dirA, 7, a)
	writeRun(t, dirB, 7, b)
	rep, err := Bisect(dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Fatal("divergent runs reported identical")
	}
	if rep.WindowStart != 50*time.Second || rep.WindowEnd != 75*time.Second {
		t.Fatalf("window (%s .. %s], want (50s .. 75s]", rep.WindowStart, rep.WindowEnd)
	}
	if len(rep.Divergent) != 1 || rep.Divergent[0].Name != "chain" {
		t.Fatalf("divergent = %+v, want exactly [chain]", rep.Divergent)
	}
	d := rep.Divergent[0]
	if d.Field != "count" || d.ValueA != "3" || d.ValueB != "9" {
		t.Fatalf("first diff = %s: %s vs %s", d.Field, d.ValueA, d.ValueB)
	}
	out := rep.Format()
	for _, want := range []string{"(50s .. 1m15s]", "chain", "count", "3 vs 9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format %q missing %q", out, want)
		}
	}
}

func TestBisectFirstCheckpointDiffers(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeRun(t, dirA, 7, map[time.Duration][2]uint64{25 * time.Second: {1, 1}})
	writeRun(t, dirB, 7, map[time.Duration][2]uint64{25 * time.Second: {2, 1}})
	rep, err := Bisect(dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical || rep.WindowStart != -1 || rep.WindowEnd != 25*time.Second {
		t.Fatalf("report: %+v", rep)
	}
	if len(rep.Divergent) != 1 || rep.Divergent[0].Name != "sched" {
		t.Fatalf("divergent = %+v", rep.Divergent)
	}
	if !strings.Contains(rep.Format(), "before first checkpoint") {
		t.Fatalf("format: %q", rep.Format())
	}
}

func TestBisectWarnsOnSeedMismatchAndUnpaired(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeRun(t, dirA, 7, map[time.Duration][2]uint64{
		25 * time.Second: {1, 1},
		50 * time.Second: {2, 2},
	})
	writeRun(t, dirB, 8, map[time.Duration][2]uint64{
		25 * time.Second: {1, 1},
		75 * time.Second: {3, 3},
	})
	rep, err := Bisect(dirA, dirB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compared != 1 {
		t.Fatalf("compared %d, want 1 (only 25s is paired)", rep.Compared)
	}
	joined := strings.Join(rep.Warnings, "\n")
	for _, want := range []string{"seed differs", "50s exists only in run-a", "1m15s exists only in run-b"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("warnings %q missing %q", joined, want)
		}
	}
}

func TestBisectEmptyDirErrors(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	writeRun(t, dirA, 7, map[time.Duration][2]uint64{25 * time.Second: {1, 1}})
	if _, err := Bisect(dirA, dirB); err == nil {
		t.Fatal("empty run-b accepted")
	}
	if _, err := Bisect(dirA, dirA+"/missing"); err == nil {
		t.Fatal("missing dir accepted")
	}
}
