// Package snapshot implements deterministic checkpoint/restore for the
// simulation: every checkpointable subsystem serializes its state as an
// ordered sequence of labeled, typed fields (stable field order by
// construction — fields are written in source order, never from map
// iteration), checkpoints are versioned gzip files whose bytes depend only
// on simulation state, and two same-spec runs can be bisected
// checkpoint-by-checkpoint to the first divergent virtual-time window and
// subsystem.
//
// Closures make in-process state teleportation impossible in Go (pending
// scheduler events are func values), and determinism makes it unnecessary:
// a checkpoint is a sealed waypoint (per-subsystem payload + digest), and
// resume is a deterministic fast-forward that rebuilds the state by
// re-execution and *proves* it reached the same waypoint before
// continuing. See DESIGN.md §7.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Field type tags. The tag is part of the encoding, so a type change of a
// field is a format change and fails digest comparison loudly.
const (
	TU64 byte = iota + 1
	TI64
	TF64
	TStr
	TBytes
	TBool
	TDur
)

// maxLen bounds any length prefix read while decoding, so corrupted or
// adversarial inputs cannot trigger huge allocations.
const maxLen = 1 << 26

// Field is one decoded labeled value.
type Field struct {
	Label string
	Type  byte
	U     uint64
	I     int64 // also TDur (nanoseconds)
	F     float64
	S     string
	B     []byte
}

// Value renders the field's value for diffs and error messages.
func (f Field) Value() string {
	switch f.Type {
	case TU64:
		return fmt.Sprintf("%d", f.U)
	case TI64:
		return fmt.Sprintf("%d", f.I)
	case TF64:
		return fmt.Sprintf("%g", f.F)
	case TStr:
		return fmt.Sprintf("%q", f.S)
	case TBytes:
		return fmt.Sprintf("%x", f.B)
	case TBool:
		if f.U != 0 {
			return "true"
		}
		return "false"
	case TDur:
		return time.Duration(f.I).String()
	}
	return "?"
}

// equal reports whether two fields carry the same label, type and value.
func (f Field) equal(g Field) bool {
	if f.Label != g.Label || f.Type != g.Type {
		return false
	}
	switch f.Type {
	case TU64, TBool:
		return f.U == g.U
	case TI64, TDur:
		return f.I == g.I
	case TF64:
		return math.Float64bits(f.F) == math.Float64bits(g.F)
	case TStr:
		return f.S == g.S
	case TBytes:
		return string(f.B) == string(g.B)
	}
	return false
}

// Encoder serializes labeled fields into a deterministic payload. The
// zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

func (e *Encoder) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
}

func (e *Encoder) varint(v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
}

func (e *Encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *Encoder) field(t byte, label string) {
	e.buf = append(e.buf, t)
	e.str(label)
}

// U64 appends an unsigned field.
func (e *Encoder) U64(label string, v uint64) {
	e.field(TU64, label)
	e.uvarint(v)
}

// I64 appends a signed field.
func (e *Encoder) I64(label string, v int64) {
	e.field(TI64, label)
	e.varint(v)
}

// F64 appends a float field (encoded as its IEEE-754 bits, so NaN payloads
// and signed zeros round-trip exactly).
func (e *Encoder) F64(label string, v float64) {
	e.field(TF64, label)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	e.buf = append(e.buf, tmp[:]...)
}

// Str appends a string field.
func (e *Encoder) Str(label, s string) {
	e.field(TStr, label)
	e.str(s)
}

// Bytes appends a raw-bytes field.
func (e *Encoder) Bytes(label string, b []byte) {
	e.field(TBytes, label)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Bool appends a boolean field.
func (e *Encoder) Bool(label string, v bool) {
	e.field(TBool, label)
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Dur appends a duration field (virtual time).
func (e *Encoder) Dur(label string, d time.Duration) {
	e.field(TDur, label)
	e.varint(int64(d))
}

// Payload returns the encoded bytes.
func (e *Encoder) Payload() []byte { return e.buf }

// byteReader walks a payload with bounds checking; every read can fail
// instead of panicking, which is what FuzzDecode leans on.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) eof() bool { return r.off >= len(r.b) }

func (r *byteReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("snapshot: truncated input at byte %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: bad uvarint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("snapshot: bad varint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) take(n uint64) ([]byte, error) {
	if n > maxLen || r.off+int(n) > len(r.b) {
		return nil, fmt.Errorf("snapshot: length %d exceeds input at byte %d", n, r.off)
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodePayload parses a payload into its field sequence. It returns an
// error — never panics — on truncated or corrupted input.
func DecodePayload(b []byte) ([]Field, error) {
	r := &byteReader{b: b}
	var fields []Field
	for !r.eof() {
		t, err := r.byte()
		if err != nil {
			return nil, err
		}
		label, err := r.str()
		if err != nil {
			return nil, err
		}
		f := Field{Label: label, Type: t}
		switch t {
		case TU64:
			f.U, err = r.uvarint()
		case TI64, TDur:
			f.I, err = r.varint()
		case TF64:
			var raw []byte
			raw, err = r.take(8)
			if err == nil {
				f.F = math.Float64frombits(binary.BigEndian.Uint64(raw))
			}
		case TStr:
			f.S, err = r.str()
		case TBytes:
			var n uint64
			n, err = r.uvarint()
			if err == nil {
				var raw []byte
				raw, err = r.take(n)
				f.B = append([]byte(nil), raw...)
			}
		case TBool:
			var c byte
			c, err = r.byte()
			if err == nil {
				if c > 1 {
					err = fmt.Errorf("snapshot: bad bool value %d", c)
				}
				f.U = uint64(c)
			}
		default:
			err = fmt.Errorf("snapshot: unknown field type %d for %q", t, label)
		}
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return fields, nil
}

// Decoder gives RestoreState implementations access to a stored section.
type Decoder struct {
	fields []Field
}

// NewDecoder parses a stored section payload.
func NewDecoder(payload []byte) (*Decoder, error) {
	fields, err := DecodePayload(payload)
	if err != nil {
		return nil, err
	}
	return &Decoder{fields: fields}, nil
}

// Fields returns the decoded fields in payload order.
func (d *Decoder) Fields() []Field { return d.fields }

// Lookup returns the first field with the given label.
func (d *Decoder) Lookup(label string) (Field, bool) {
	for _, f := range d.fields {
		if f.Label == label {
			return f, true
		}
	}
	return Field{}, false
}

// FNV-1a 64-bit, the digest used for section payloads and for subsystems'
// internal state summaries (heap contents, pool contents, ledgers).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Digest hashes a payload.
func Digest(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// Hash incrementally digests state that is too large (or too repetitive)
// to store field-by-field: a subsystem folds its bulk state into a Hash
// and writes only the 64-bit sum.
type Hash struct {
	h uint64
}

// NewHash returns a fresh hasher.
func NewHash() *Hash { return &Hash{h: fnvOffset} }

// U64 folds an unsigned value.
func (h *Hash) U64(v uint64) {
	for i := 0; i < 8; i++ {
		h.h = (h.h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
}

// I64 folds a signed value.
func (h *Hash) I64(v int64) { h.U64(uint64(v)) }

// Dur folds a duration.
func (h *Hash) Dur(d time.Duration) { h.U64(uint64(d)) }

// Bytes folds raw bytes (length-prefixed, so concatenations don't collide).
func (h *Hash) Bytes(b []byte) {
	h.U64(uint64(len(b)))
	for _, c := range b {
		h.h = (h.h ^ uint64(c)) * fnvPrime
	}
}

// Str folds a string.
func (h *Hash) Str(s string) {
	h.U64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.h = (h.h ^ uint64(s[i])) * fnvPrime
	}
}

// Bools folds a bool slice (length-prefixed).
func (h *Hash) Bools(bs []bool) {
	h.U64(uint64(len(bs)))
	for _, b := range bs {
		if b {
			h.U64(1)
		} else {
			h.U64(0)
		}
	}
}

// Ints folds an int slice (length-prefixed).
func (h *Hash) Ints(ns []int) {
	h.U64(uint64(len(ns)))
	for _, n := range ns {
		h.I64(int64(n))
	}
}

// Sum returns the digest so far.
func (h *Hash) Sum() uint64 { return h.h }
