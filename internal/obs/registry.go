package obs

import (
	"time"

	"diablo/internal/sim"
)

// Counter is a monotonically increasing metric. All methods are safe (and
// free) on a nil receiver, so instrumented code needs no enabled-check.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram accumulates observations into fixed buckets. bounds[i] is the
// inclusive upper edge of bucket i; one overflow bucket follows. Safe on a
// nil receiver.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// column is one sampled value: a counter's or gauge's read function.
type column struct {
	name string
	read func() float64
}

// Registry holds the run's metrics and samples them on scheduler ticks.
// Sampling only reads state, so attaching a registry never perturbs the
// simulation outcome. Registration order fixes the column order (and is
// therefore deterministic); histogram-derived columns come last.
type Registry struct {
	cols   []column
	hists  []*Histogram
	hnames []string

	interval time.Duration   //lint:allow snapshotdrift sampling configuration set at attach, fixed during a run
	times    []time.Duration //lint:allow snapshotdrift sampled output rows; reporting only, never replayed
	rows     [][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a named counter and returns it. On a nil registry it
// returns nil, which is the disabled (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.cols = append(r.cols, column{name: name, read: func() float64 { return float64(c.v) }})
	return c
}

// Gauge registers a named read-only sampled value.
func (r *Registry) Gauge(name string, read func() float64) {
	if r == nil {
		return
	}
	r.cols = append(r.cols, column{name: name, read: read})
}

// Histogram registers a named histogram with the given bucket upper edges
// (nil = a single overflow bucket, i.e. count and mean only). Its sampled
// columns are <name>.count and <name>.mean.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.hists = append(r.hists, h)
	r.hnames = append(r.hnames, name)
	return h
}

// Names returns every sampled column name in column order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.cols)+2*len(r.hists))
	for _, c := range r.cols {
		names = append(names, c.name)
	}
	for _, n := range r.hnames {
		names = append(names, n+".count", n+".mean")
	}
	return names
}

// sample reads every column into a fresh row.
func (r *Registry) sample() []float64 {
	row := make([]float64, 0, len(r.cols)+2*len(r.hists))
	for _, c := range r.cols {
		row = append(row, c.read())
	}
	for _, h := range r.hists {
		row = append(row, float64(h.count), h.Mean())
	}
	return row
}

// Attach schedules periodic sampling on the scheduler. Each tick stores a
// row and, when a tracer is given, emits a "sample" event. The ticker runs
// until the simulation ends. Sampling rides on observer events, so an
// attached registry never shows up in the Executed count or occupancy
// stats it samples.
func (r *Registry) Attach(sched *sim.Scheduler, every time.Duration, tr *Tracer) {
	if r == nil || every <= 0 {
		return
	}
	r.interval = every
	sched.EveryObserver(every, func() {
		now := sched.Now()
		row := r.sample()
		r.times = append(r.times, now)
		r.rows = append(r.rows, row)
		tr.Sample(now, row)
	})
}

// HistogramSnapshot is one histogram's final state.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is the sampled timeline plus final histogram state, embeddable
// in result files.
type Snapshot struct {
	IntervalS  float64             `json:"interval_s"`
	Names      []string            `json:"names"`
	TimesS     []float64           `json:"times_s"`
	Series     [][]float64         `json:"series"` // Series[i] is column i over time
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot converts the collected rows into per-column series. Returns nil
// on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	names := r.Names()
	snap := &Snapshot{
		IntervalS: r.interval.Seconds(),
		Names:     names,
		TimesS:    make([]float64, len(r.times)),
		Series:    make([][]float64, len(names)),
	}
	for i, at := range r.times {
		snap.TimesS[i] = at.Seconds()
	}
	for i := range snap.Series {
		col := make([]float64, len(r.rows))
		for j, row := range r.rows {
			col[j] = row[i]
		}
		snap.Series[i] = col
	}
	for i, h := range r.hists {
		snap.Histograms = append(snap.Histograms, HistogramSnapshot{
			Name:   r.hnames[i],
			Bounds: h.bounds,
			Counts: h.counts,
			Count:  h.count,
			Sum:    h.sum,
		})
	}
	return snap
}
