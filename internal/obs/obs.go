// Package obs is the deterministic observability layer: transaction
// lifecycle tracing, a sim-time metrics registry, and the latency
// attribution used by `diablo-report trace`.
//
// Every timestamp is virtual scheduler time, so a trace from a seeded run
// is bit-identical across machines and repetitions — the property the
// chaos and determinism tests rely on. Events are emitted as JSONL with a
// fixed field order through a hand-rolled serializer writing into one
// reusable buffer; with a warm buffer an event emission does not allocate,
// and every hook is safe (and free) on a nil *Tracer / nil *Counter, so
// instrumented hot paths cost nothing when observability is off.
package obs

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"diablo/internal/types"
)

// Event kinds, as they appear in the JSONL "kind" field.
const (
	KindMeta    = "meta"    // first line: chain, seed, sample interval, metric names
	KindSubmit  = "submit"  // client accepted a transaction for submission
	KindSend    = "send"    // one submission attempt reached the node RPC
	KindAdmit   = "admit"   // the node's mempool admitted the transaction
	KindReject  = "reject"  // the node refused the submission (note says why)
	KindInclude = "include" // a proposer included the transaction in a block
	KindCommit  = "commit"  // the client observed the decision (confirmed)
	KindRetry   = "retry"   // the retry policy resubmitted after a timeout
	KindTimeout = "timeout" // the retry policy gave up on the transaction
	KindBlock   = "block"   // a block was assembled and entered the chain
	KindFault   = "fault"   // a chaos fault was applied or cleared
	KindSample  = "sample"  // one registry sampling tick (vals match meta's metrics)

	KindByzantine = "byzantine" // a byzantine behavior window applied/cleared/fired
	KindViolation = "violation" // an invariant monitor detected a violation
	KindPexec     = "pexec"     // parallel-execution diagnostics for one block
)

// Tracer emits lifecycle events as JSONL. All methods are safe on a nil
// receiver (they do nothing), which is the disabled fast path.
type Tracer struct {
	w      *bufio.Writer
	buf    []byte
	events uint64
	err    error
}

// NewTracer wraps a sink. The caller owns the sink; Flush must be called
// before the sink is closed.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// Events returns how many events were emitted.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.events
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Flush drains the internal buffer into the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

const hexDigits = "0123456789abcdef"

// head begins a line: {"t":<ns>,"kind":"<kind>"
func (t *Tracer) head(at time.Duration, kind string) {
	t.buf = append(t.buf[:0], `{"t":`...)
	t.buf = strconv.AppendInt(t.buf, int64(at), 10)
	t.buf = append(t.buf, `,"kind":"`...)
	t.buf = append(t.buf, kind...)
	t.buf = append(t.buf, '"')
}

// end closes the line and writes it out.
func (t *Tracer) end() {
	t.buf = append(t.buf, '}', '\n')
	if _, err := t.w.Write(t.buf); err != nil && t.err == nil {
		t.err = err
	}
	t.events++
}

// txField appends ,"tx":"<16 hex chars>" — the first 8 bytes of the hash
// identify a transaction within a run.
func (t *Tracer) txField(id types.Hash) {
	t.buf = append(t.buf, `,"tx":"`...)
	for _, b := range id[:8] {
		t.buf = append(t.buf, hexDigits[b>>4], hexDigits[b&0xf])
	}
	t.buf = append(t.buf, '"')
}

func (t *Tracer) intField(name string, v int64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendInt(t.buf, v, 10)
}

func (t *Tracer) uintField(name string, v uint64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendUint(t.buf, v, 10)
}

func (t *Tracer) floatField(name string, v float64) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':')
	t.buf = strconv.AppendFloat(t.buf, v, 'g', -1, 64)
}

func (t *Tracer) strField(name, v string) {
	t.buf = append(t.buf, ',', '"')
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '"', ':', '"')
	t.buf = appendEscaped(t.buf, v)
	t.buf = append(t.buf, '"')
}

// appendEscaped JSON-escapes a (short, ASCII) annotation string.
func appendEscaped(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

// Meta emits the header line carrying run identity and the names of the
// sampled metric columns (interval 0 = no sampling).
func (t *Tracer) Meta(chain string, seed int64, interval time.Duration, metrics []string) {
	if t == nil {
		return
	}
	t.buf = append(t.buf[:0], `{"kind":"meta"`...)
	t.strField("chain", chain)
	t.intField("seed", seed)
	t.intField("interval_ns", int64(interval))
	t.buf = append(t.buf, `,"metrics":[`...)
	for i, m := range metrics {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = append(t.buf, '"')
		t.buf = appendEscaped(t.buf, m)
		t.buf = append(t.buf, '"')
	}
	t.buf = append(t.buf, ']')
	t.end()
}

// Submit records a client accepting a transaction for submission.
func (t *Tracer) Submit(at time.Duration, id types.Hash, node int) {
	if t == nil {
		return
	}
	t.head(at, KindSubmit)
	t.txField(id)
	t.intField("node", int64(node))
	t.end()
}

// Send records one submission attempt reaching the node RPC.
func (t *Tracer) Send(at time.Duration, id types.Hash, node, attempt int) {
	if t == nil {
		return
	}
	t.head(at, KindSend)
	t.txField(id)
	t.intField("node", int64(node))
	if attempt > 0 {
		t.intField("attempt", int64(attempt))
	}
	t.end()
}

// Admit records mempool admission at the submission node.
func (t *Tracer) Admit(at time.Duration, id types.Hash, node int) {
	if t == nil {
		return
	}
	t.head(at, KindAdmit)
	t.txField(id)
	t.intField("node", int64(node))
	t.end()
}

// Reject records a refused submission; note is a short reason code.
func (t *Tracer) Reject(at time.Duration, id types.Hash, node int, note string) {
	if t == nil {
		return
	}
	t.head(at, KindReject)
	t.txField(id)
	t.intField("node", int64(node))
	t.strField("note", note)
	t.end()
}

// Include records block inclusion at assembly time.
func (t *Tracer) Include(at time.Duration, id types.Hash, block uint64) {
	if t == nil {
		return
	}
	t.head(at, KindInclude)
	t.txField(id)
	t.uintField("block", block)
	t.end()
}

// Commit records the client-observed decision (after confirmation depth).
func (t *Tracer) Commit(at time.Duration, id types.Hash, node int) {
	if t == nil {
		return
	}
	t.head(at, KindCommit)
	t.txField(id)
	t.intField("node", int64(node))
	t.end()
}

// Retry records a resubmission; attempt is the new (1-based) attempt count.
func (t *Tracer) Retry(at time.Duration, id types.Hash, attempt int) {
	if t == nil {
		return
	}
	t.head(at, KindRetry)
	t.txField(id)
	t.intField("attempt", int64(attempt))
	t.end()
}

// Timeout records the retry policy abandoning a transaction.
func (t *Tracer) Timeout(at time.Duration, id types.Hash, attempts int) {
	if t == nil {
		return
	}
	t.head(at, KindTimeout)
	t.txField(id)
	t.intField("attempt", int64(attempts))
	t.end()
}

// Block records one assembled block: size, gas, fill ratio and the modeled
// proposer/validator CPU cost (the execution component of attribution).
func (t *Tracer) Block(at time.Duration, number uint64, txs int, gasUsed, gasLimit uint64, fill float64, assemble, validate time.Duration, proposer int) {
	if t == nil {
		return
	}
	t.head(at, KindBlock)
	t.uintField("block", number)
	t.intField("txs", int64(txs))
	t.uintField("gas_used", gasUsed)
	t.uintField("gas_limit", gasLimit)
	t.floatField("fill", fill)
	t.intField("assemble_ns", int64(assemble))
	t.intField("validate_ns", int64(validate))
	t.intField("proposer", int64(proposer))
	t.end()
}

// Pexec records one block's parallel-execution outcome (--exec-workers
// > 1): how many transactions committed straight from speculation, how
// many fell back to sequential re-execution, and how many read-after-write
// hazard edges the conflict graph held.
func (t *Tracer) Pexec(at time.Duration, block uint64, spec, fallback, edges uint64) {
	if t == nil {
		return
	}
	t.head(at, KindPexec)
	t.uintField("block", block)
	t.uintField("spec", spec)
	t.uintField("fallback", fallback)
	t.uintField("edges", edges)
	t.end()
}

// Fault records a chaos fault transition; phase is "apply" or "clear".
func (t *Tracer) Fault(at time.Duration, phase, note string) {
	if t == nil {
		return
	}
	t.head(at, KindFault)
	t.strField("phase", phase)
	t.strField("note", note)
	t.end()
}

// Byzantine records an adversary transition; phase is "apply", "clear",
// "equivocate" or "defended".
func (t *Tracer) Byzantine(at time.Duration, phase, note string) {
	if t == nil {
		return
	}
	t.head(at, KindByzantine)
	t.strField("phase", phase)
	t.strField("note", note)
	t.end()
}

// Violation records an invariant monitor detecting a breach.
func (t *Tracer) Violation(at time.Duration, invariant string, height uint64, nodes []int, detail string) {
	if t == nil {
		return
	}
	t.head(at, KindViolation)
	t.strField("invariant", invariant)
	t.uintField("height", height)
	t.buf = append(t.buf, `,"nodes":[`...)
	for i, n := range nodes {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = strconv.AppendInt(t.buf, int64(n), 10)
	}
	t.buf = append(t.buf, ']')
	t.strField("detail", detail)
	t.end()
}

// Sample records one registry sampling tick; vals are ordered like the
// meta line's metric names.
func (t *Tracer) Sample(at time.Duration, vals []float64) {
	if t == nil {
		return
	}
	t.head(at, KindSample)
	t.buf = append(t.buf, `,"vals":[`...)
	for i, v := range vals {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = strconv.AppendFloat(t.buf, v, 'g', -1, 64)
	}
	t.buf = append(t.buf, ']')
	t.end()
}

// sink couples a trace file with its optional gzip layer so one Close
// flushes both.
type sink struct {
	f  *os.File
	gz *gzip.Writer
}

func (s *sink) Write(p []byte) (int, error) {
	if s.gz != nil {
		return s.gz.Write(p)
	}
	return s.f.Write(p)
}

func (s *sink) Close() error {
	var err error
	if s.gz != nil {
		err = s.gz.Close()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// OpenSink creates a trace file; a path ending in ".gz" is transparently
// gzip-compressed (with a zero header timestamp, keeping same-seed traces
// byte-identical).
func OpenSink(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &sink{f: f}
	if strings.HasSuffix(path, ".gz") {
		s.gz = gzip.NewWriter(f)
	}
	return s, nil
}
