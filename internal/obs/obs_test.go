package obs

import (
	"bytes"
	"compress/gzip"
	"io"
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"diablo/internal/sim"
	"diablo/internal/types"
)

func txid(b byte) types.Hash {
	var h types.Hash
	for i := range h {
		h[i] = b
	}
	return h
}

// TestNilTracerAndCounters pins the disabled fast path: every hook must be
// a safe no-op on nil receivers.
func TestNilTracerAndCounters(t *testing.T) {
	var tr *Tracer
	id := txid(1)
	tr.Meta("x", 1, time.Second, []string{"a"})
	tr.Submit(0, id, 0)
	tr.Send(0, id, 0, 1)
	tr.Admit(0, id, 0)
	tr.Reject(0, id, 0, "full")
	tr.Include(0, id, 1)
	tr.Commit(0, id, 0)
	tr.Retry(0, id, 1)
	tr.Timeout(0, id, 3)
	tr.Block(0, 1, 2, 3, 4, 0.5, time.Second, time.Second, 0)
	tr.Fault(0, "apply", "crash")
	tr.Sample(0, []float64{1})
	if tr.Events() != 0 || tr.Err() != nil || tr.Flush() != nil {
		t.Fatal("nil tracer must be inert")
	}

	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram must be inert")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("y", nil) != nil || r.Names() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.Gauge("z", func() float64 { return 1 })
	r.Attach(sim.NewScheduler(1), time.Second, nil)
}

// TestTraceRoundTrip emits one of every event and checks the parsed spans,
// blocks, samples and faults.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	a, b := txid(0xaa), txid(0xbb)
	tr.Meta("quorum", 7, time.Second, []string{"m1", "m2"})
	tr.Submit(1e6, a, 3)
	tr.Send(2e6, a, 3, 0)
	tr.Admit(3e6, a, 3)
	tr.Submit(1e6, b, 4)
	tr.Send(2e6, b, 4, 0)
	tr.Reject(3e6, b, 4, `pool "full"`)
	tr.Retry(4e6, b, 1)
	tr.Timeout(9e6, b, 3)
	tr.Block(5e6, 1, 1, 2100, 10000, 0.21, 2*time.Millisecond, time.Millisecond, 2)
	tr.Include(5e6, a, 1)
	tr.Commit(8e6, a, 3)
	tr.Fault(6e6, "apply", "crash node 3")
	tr.Sample(7e6, []float64{1, 2.5})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	parsed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Chain != "quorum" || parsed.Seed != 7 || parsed.Interval != time.Second {
		t.Fatalf("meta mismatch: %+v", parsed)
	}
	if len(parsed.MetricNames) != 2 || parsed.MetricNames[1] != "m2" {
		t.Fatalf("metric names: %v", parsed.MetricNames)
	}
	if parsed.Submitted != 2 || parsed.Committed != 1 || parsed.TimedOut != 1 || parsed.Retries != 1 {
		t.Fatalf("classification: %+v", parsed)
	}
	sa := parsed.Spans["aaaaaaaaaaaaaaaa"]
	if sa == nil || sa.Submit != 1e6 || sa.Admit != 3e6 || sa.Include != 5e6 || sa.Commit != 8e6 || sa.Block != 1 {
		t.Fatalf("span a: %+v", sa)
	}
	sb := parsed.Spans["bbbbbbbbbbbbbbbb"]
	if sb == nil || !sb.TimedOut || sb.Rejects != 1 || sb.Committed() {
		t.Fatalf("span b: %+v", sb)
	}
	blk := parsed.Blocks[1]
	if blk == nil || blk.Txs != 1 || blk.GasUsed != 2100 || blk.Assemble != 2*time.Millisecond || blk.Proposer != 2 {
		t.Fatalf("block: %+v", blk)
	}
	if len(parsed.Faults) != 1 || parsed.Faults[0].Note != "crash node 3" {
		t.Fatalf("faults: %+v", parsed.Faults)
	}
	if len(parsed.Samples) != 1 || parsed.Samples[0].Vals[1] != 2.5 {
		t.Fatalf("samples: %+v", parsed.Samples)
	}
}

// TestReadTraceGzipAndErrors checks gzip sniffing and schema validation.
func TestReadTraceGzipAndErrors(t *testing.T) {
	var plain bytes.Buffer
	tr := NewTracer(&plain)
	tr.Submit(0, txid(1), 0)
	tr.Flush()

	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	parsed, err := ReadTrace(&zipped)
	if err != nil || parsed.Submitted != 1 {
		t.Fatalf("gzip read: %v %+v", err, parsed)
	}

	if _, err := ReadTrace(strings.NewReader(`{"t":1,"kind":"warp"}` + "\n")); err == nil {
		t.Fatal("unknown kind must fail validation")
	}
	if _, err := ReadTrace(strings.NewReader(`{"t":1,"kind":"admit","tx":"xy"}` + "\n")); err == nil {
		t.Fatal("bad tx id must fail validation")
	}
	if _, err := ReadTrace(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line must fail validation")
	}
}

// TestRegistrySampling runs a scheduler with an attached registry and
// checks tick count, column order and histogram-derived columns.
func TestRegistrySampling(t *testing.T) {
	s := sim.NewScheduler(1)
	reg := NewRegistry()
	c := reg.Counter("events")
	var g float64
	reg.Gauge("depth", func() float64 { return g })
	h := reg.Histogram("fill", []float64{0.5})

	var buf bytes.Buffer
	tr := NewTracer(&buf)
	reg.Attach(s, time.Second, tr)
	s.Every(300*time.Millisecond, func() {
		c.Inc()
		g = float64(s.Now().Milliseconds())
		h.Observe(0.25)
		h.Observe(0.75)
	})
	s.RunUntil(3500 * time.Millisecond)
	tr.Flush()

	snap := reg.Snapshot()
	wantNames := []string{"events", "depth", "fill.count", "fill.mean"}
	if len(snap.Names) != len(wantNames) {
		t.Fatalf("names: %v", snap.Names)
	}
	for i, n := range wantNames {
		if snap.Names[i] != n {
			t.Fatalf("names[%d] = %q, want %q", i, snap.Names[i], n)
		}
	}
	if len(snap.TimesS) != 3 {
		t.Fatalf("ticks: %v", snap.TimesS)
	}
	// At t=1s the 300ms ticker has fired 3 times (0.3, 0.6, 0.9).
	if snap.Series[0][0] != 3 {
		t.Fatalf("counter column: %v", snap.Series[0])
	}
	if got := snap.Series[3][2]; math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("histogram mean column = %v", got)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Counts[0] != snap.Histograms[0].Counts[1] {
		t.Fatalf("histogram snapshot: %+v", snap.Histograms)
	}

	parsed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Samples) != 3 || len(parsed.Samples[0].Vals) != 4 {
		t.Fatalf("sample events: %+v", parsed.Samples)
	}
}

// TestAttribution checks the component math on a synthetic trace: the
// components must sum exactly to the total latency (zero residual).
func TestAttribution(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	id := txid(1)
	tr.Submit(0, id, 0)
	tr.Admit(10*time.Millisecond, id, 0)
	tr.Block(time.Second, 1, 1, 21000, 0, 0, 100*time.Millisecond, 90*time.Millisecond, 0)
	tr.Include(1e9, id, 1)
	tr.Commit(2e9, id, 0)
	tr.Flush()

	parsed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	att := Attribute(parsed)
	if att.Committed != 1 {
		t.Fatalf("committed: %+v", att)
	}
	want := map[string]time.Duration{
		"network":   10 * time.Millisecond,
		"mempool":   990 * time.Millisecond,
		"execution": 100 * time.Millisecond,
		"consensus": 900 * time.Millisecond,
	}
	var sum time.Duration
	for _, c := range att.Components {
		if c.Median != want[c.Name] {
			t.Fatalf("%s = %v, want %v", c.Name, c.Median, want[c.Name])
		}
		sum += c.Median
	}
	if sum != att.Total.Median || att.Total.Median != 2*time.Second {
		t.Fatalf("components sum to %v, total %v", sum, att.Total.Median)
	}
	if att.MaxResidualShare != 0 {
		t.Fatalf("residual: %v", att.MaxResidualShare)
	}
}

// TestAttributionClampsExecution: when a block's assembly cost exceeds the
// post-inclusion wait (overlapped pipelines), execution is capped so the
// breakdown still sums to the total.
func TestAttributionClampsExecution(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	id := txid(2)
	tr.Submit(0, id, 0)
	tr.Admit(0, id, 0)
	tr.Block(1e9, 1, 1, 0, 0, 0, 5*time.Second, time.Second, 0)
	tr.Include(1e9, id, 1)
	tr.Commit(1_500_000_000, id, 0)
	tr.Flush()
	parsed, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	att := Attribute(parsed)
	for _, c := range att.Components {
		if c.Name == "execution" && c.Median != 500*time.Millisecond {
			t.Fatalf("execution = %v, want clamped 500ms", c.Median)
		}
		if c.Name == "consensus" && c.Median != 0 {
			t.Fatalf("consensus = %v, want 0", c.Median)
		}
	}
	if att.MaxResidualShare != 0 {
		t.Fatalf("residual: %v", att.MaxResidualShare)
	}
}

// TestOpenSinkGzip exercises the .gz sink and byte-stability of the gzip
// header (zero ModTime).
func TestOpenSinkGzip(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) []byte {
		path := dir + "/" + name
		w, err := OpenSink(path)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracer(w)
		tr.Submit(1, txid(3), 0)
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := write("a.jsonl.gz")
	b := write("b.jsonl.gz")
	if !bytes.Equal(a, b) {
		t.Fatal("gzip sinks are not byte-stable")
	}
	r, err := gzip.NewReader(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(plain, []byte(`"kind":"submit"`)) {
		t.Fatalf("decoded trace: %s", plain)
	}
}
