package obs

import (
	"math"

	"diablo/internal/snapshot"
)

// SnapshotState implements snapshot.Stater: sampled-row count plus a
// digest over every registered column's current value and the histogram
// state, in registration (column) order.
func (r *Registry) SnapshotState(e *snapshot.Encoder) {
	e.U64("columns", uint64(len(r.cols)+2*len(r.hists)))
	e.U64("rows", uint64(len(r.rows)))
	h := snapshot.NewHash()
	for _, c := range r.cols {
		h.Str(c.name)
		h.U64(math.Float64bits(c.read()))
	}
	for i, hist := range r.hists {
		h.Str(r.hnames[i])
		h.U64(hist.count)
		h.U64(math.Float64bits(hist.sum))
		for _, n := range hist.counts {
			h.U64(n)
		}
	}
	e.U64("values_digest", h.Sum())
}

// RestoreState implements snapshot.Restorer by reconciling the stored
// section against the fast-forwarded live registry.
func (r *Registry) RestoreState(d *snapshot.Decoder) error {
	return snapshot.Reconcile(r, d)
}
