package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// TxSpan is one transaction's reconstructed lifecycle. Phase timestamps
// are -1 until the corresponding event is seen.
type TxSpan struct {
	ID       string
	Node     int
	Submit   time.Duration
	Admit    time.Duration
	Include  time.Duration
	Commit   time.Duration
	Block    uint64
	Attempts int // send attempts observed
	Rejects  int // reject events observed (any reason)
	TimedOut bool
}

// Committed reports whether the span reached a client-observed decision.
func (s *TxSpan) Committed() bool { return s.Commit >= 0 }

// BlockInfo is one block event.
type BlockInfo struct {
	At       time.Duration
	Number   uint64
	Txs      int
	GasUsed  uint64
	GasLimit uint64
	Fill     float64
	Assemble time.Duration
	Validate time.Duration
	Proposer int
}

// Sample is one registry sampling tick.
type Sample struct {
	At   time.Duration
	Vals []float64
}

// FaultNote is one chaos fault transition.
type FaultNote struct {
	At    time.Duration
	Phase string
	Note  string
}

// PexecStats aggregates the trace's per-block parallel-execution events
// (runs with --exec-workers > 1 emit one "pexec" line per block).
type PexecStats struct {
	Blocks    int    // blocks carrying a pexec event
	Spec      uint64 // transactions committed straight from speculation
	Fallbacks uint64 // transactions re-executed sequentially
	Edges     uint64 // read-after-write hazard edges across conflict graphs
}

// Trace is a fully parsed trace file.
type Trace struct {
	Chain       string
	Seed        int64
	Interval    time.Duration
	MetricNames []string

	Events int
	Spans  map[string]*TxSpan
	Order  []string // tx ids in first-seen order
	Blocks map[uint64]*BlockInfo
	Samples []Sample
	Faults  []FaultNote
	// Pexec is nil unless the trace carries parallel-execution events.
	Pexec *PexecStats

	// Terminal classification of every span.
	Submitted, Committed, Rejected, TimedOut, Pending int
	Retries                                           int
}

// rawEvent is the union of every line shape, for decoding.
type rawEvent struct {
	T          int64     `json:"t"`
	Kind       string    `json:"kind"`
	Tx         string    `json:"tx"`
	Node       int       `json:"node"`
	Attempt    int       `json:"attempt"`
	Note       string    `json:"note"`
	Block      uint64    `json:"block"`
	Txs        int       `json:"txs"`
	GasUsed    uint64    `json:"gas_used"`
	GasLimit   uint64    `json:"gas_limit"`
	Fill       float64   `json:"fill"`
	AssembleNS int64     `json:"assemble_ns"`
	ValidateNS int64     `json:"validate_ns"`
	Proposer   int       `json:"proposer"`
	Phase      string    `json:"phase"`
	Vals       []float64 `json:"vals"`
	Chain      string    `json:"chain"`
	Seed       int64     `json:"seed"`
	IntervalNS int64     `json:"interval_ns"`
	Metrics    []string  `json:"metrics"`
	Spec       uint64    `json:"spec"`
	Fallback   uint64    `json:"fallback"`
	Edges      uint64    `json:"edges"`
}

// ReadTrace parses (and schema-validates) a JSONL trace, transparently
// handling gzip. Unknown event kinds, malformed lines and tx events with
// bad ids are errors.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		br = bufio.NewReader(gz)
	}
	tr := &Trace{
		Spans:  make(map[string]*TxSpan),
		Blocks: make(map[uint64]*BlockInfo),
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev rawEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		if err := tr.apply(&ev, lineNo); err != nil {
			return nil, err
		}
		tr.Events++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	tr.classify()
	return tr, nil
}

// span returns (creating as needed) the span for a tx id.
func (tr *Trace) span(id string, lineNo int) (*TxSpan, error) {
	if len(id) != 16 {
		return nil, fmt.Errorf("obs: trace line %d: bad tx id %q", lineNo, id)
	}
	s, ok := tr.Spans[id]
	if !ok {
		s = &TxSpan{ID: id, Submit: -1, Admit: -1, Include: -1, Commit: -1}
		tr.Spans[id] = s
		tr.Order = append(tr.Order, id)
	}
	return s, nil
}

func (tr *Trace) apply(ev *rawEvent, lineNo int) error {
	at := time.Duration(ev.T)
	switch ev.Kind {
	case KindMeta:
		tr.Chain = ev.Chain
		tr.Seed = ev.Seed
		tr.Interval = time.Duration(ev.IntervalNS)
		tr.MetricNames = ev.Metrics
	case KindSubmit:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		if s.Submit < 0 {
			s.Submit = at
			s.Node = ev.Node
		}
	case KindSend:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		s.Attempts++
	case KindAdmit:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		if s.Admit < 0 {
			s.Admit = at
		}
	case KindReject:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		s.Rejects++
	case KindInclude:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		if s.Include < 0 {
			s.Include = at
			s.Block = ev.Block
		}
	case KindCommit:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		if s.Commit < 0 {
			s.Commit = at
		}
	case KindRetry:
		if _, err := tr.span(ev.Tx, lineNo); err != nil {
			return err
		}
		tr.Retries++
	case KindTimeout:
		s, err := tr.span(ev.Tx, lineNo)
		if err != nil {
			return err
		}
		s.TimedOut = true
	case KindBlock:
		tr.Blocks[ev.Block] = &BlockInfo{
			At:       at,
			Number:   ev.Block,
			Txs:      ev.Txs,
			GasUsed:  ev.GasUsed,
			GasLimit: ev.GasLimit,
			Fill:     ev.Fill,
			Assemble: time.Duration(ev.AssembleNS),
			Validate: time.Duration(ev.ValidateNS),
			Proposer: ev.Proposer,
		}
	case KindPexec:
		if tr.Pexec == nil {
			tr.Pexec = &PexecStats{}
		}
		tr.Pexec.Blocks++
		tr.Pexec.Spec += ev.Spec
		tr.Pexec.Fallbacks += ev.Fallback
		tr.Pexec.Edges += ev.Edges
	case KindFault:
		tr.Faults = append(tr.Faults, FaultNote{At: at, Phase: ev.Phase, Note: ev.Note})
	case KindSample:
		tr.Samples = append(tr.Samples, Sample{At: at, Vals: ev.Vals})
	default:
		return fmt.Errorf("obs: trace line %d: unknown kind %q", lineNo, ev.Kind)
	}
	return nil
}

// classify assigns every span a terminal state: committed wins, then
// timeout, then rejection; anything else is pending.
func (tr *Trace) classify() {
	tr.Submitted = len(tr.Spans)
	for _, id := range tr.Order {
		s := tr.Spans[id]
		switch {
		case s.Committed():
			tr.Committed++
		case s.TimedOut:
			tr.TimedOut++
		case s.Rejects > 0:
			tr.Rejected++
		default:
			tr.Pending++
		}
	}
}

// Component is one latency component's aggregate over committed spans.
type Component struct {
	Name   string        `json:"name"`
	Median time.Duration `json:"median_ns"`
	P95    time.Duration `json:"p95_ns"`
	Mean   time.Duration `json:"mean_ns"`
	Share  float64       `json:"share"` // of total committed latency
}

// Attribution breaks committed-transaction latency into components:
//
//	network   — submission to mempool admission (client overhead, RPC, retries)
//	mempool   — admission to block inclusion (queueing for block space)
//	execution — the including block's assembly cost (capped by the post-
//	            inclusion wait, for engines that overlap dissemination)
//	consensus — inclusion to the client-observed decision, minus execution
//	            (proposal, voting, dissemination, confirmation depth)
//
// The components of each transaction sum to its total latency by
// construction, so the residual is only non-zero for spans with missing
// events.
type Attribution struct {
	Chain      string      `json:"chain"`
	Committed  int         `json:"committed"`
	Total      Component   `json:"total"`
	Components []Component `json:"components"`
	// MeanResidualShare and MaxResidualShare report the unattributed
	// fraction of per-transaction latency (acceptance: max < 0.05).
	MeanResidualShare float64 `json:"mean_residual_share"`
	MaxResidualShare  float64 `json:"max_residual_share"`
}

// Attribute computes the latency breakdown of every committed span.
func Attribute(tr *Trace) *Attribution {
	att := &Attribution{Chain: tr.Chain}
	var totals, nets, pools, execs, conss []time.Duration
	var sumResidual, maxResidual float64
	for _, id := range tr.Order {
		s := tr.Spans[id]
		if !s.Committed() || s.Submit < 0 {
			continue
		}
		total := s.Commit - s.Submit
		if total <= 0 {
			continue
		}
		admit, include := s.Admit, s.Include
		if admit < 0 {
			admit = s.Submit
		}
		if include < 0 {
			include = s.Commit
		}
		network := admit - s.Submit
		pool := include - admit
		post := s.Commit - include
		var exec time.Duration
		if b := tr.Blocks[s.Block]; b != nil && s.Include >= 0 {
			exec = b.Assemble
			if exec > post {
				exec = post
			}
		}
		cons := post - exec
		residual := total - network - pool - exec - cons
		share := float64(residual) / float64(total)
		if share < 0 {
			share = -share
		}
		sumResidual += share
		if share > maxResidual {
			maxResidual = share
		}
		totals = append(totals, total)
		nets = append(nets, network)
		pools = append(pools, pool)
		execs = append(execs, exec)
		conss = append(conss, cons)
	}
	att.Committed = len(totals)
	if att.Committed == 0 {
		return att
	}
	att.MeanResidualShare = sumResidual / float64(att.Committed)
	att.MaxResidualShare = maxResidual
	totalSum := sum(totals)
	att.Total = component("total", totals, totalSum)
	att.Total.Share = 1
	att.Components = []Component{
		component("network", nets, totalSum),
		component("mempool", pools, totalSum),
		component("consensus", conss, totalSum),
		component("execution", execs, totalSum),
	}
	return att
}

func sum(ds []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s
}

func component(name string, ds []time.Duration, totalSum time.Duration) Component {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := sum(ds)
	c := Component{
		Name:   name,
		Median: quantile(sorted, 0.5),
		P95:    quantile(sorted, 0.95),
		Mean:   s / time.Duration(len(ds)),
	}
	if totalSum > 0 {
		c.Share = float64(s) / float64(totalSum)
	}
	return c
}

// quantile returns the q-quantile of a sorted slice (nearest rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
