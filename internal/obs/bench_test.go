package obs

import (
	"io"
	"testing"
	"time"

	"diablo/internal/types"
)

// hookSequence is the per-transaction instrumentation pattern the chain
// harness runs on its hot path: counters plus the full lifecycle of tracer
// emissions for one committed transaction.
func hookSequence(tr *Tracer, m *Counter, id types.Hash) {
	m.Inc()
	tr.Submit(time.Millisecond, id, 1)
	tr.Send(2*time.Millisecond, id, 1, 0)
	tr.Admit(3*time.Millisecond, id, 1)
	tr.Include(time.Second, id, 42)
	tr.Commit(2*time.Second, id, 1)
}

// BenchmarkTracingDisabled measures the nil-sink fast path: the exact hook
// calls the instrumented code makes when observability is off. Must be
// 0 allocs/op (asserted by TestTracingDisabledAllocs).
func BenchmarkTracingDisabled(b *testing.B) {
	var tr *Tracer
	var m *Counter
	id := txid(0x5a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hookSequence(tr, m, id)
	}
}

// BenchmarkTracingEnabled measures the same hooks with a live tracer
// writing into io.Discard. Budget: 0 allocs/op once the line buffer is
// warm (asserted by TestTracingEnabledAllocs).
func BenchmarkTracingEnabled(b *testing.B) {
	tr := NewTracer(io.Discard)
	m := &Counter{}
	id := txid(0x5a)
	hookSequence(tr, m, id) // warm the line buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hookSequence(tr, m, id)
	}
}

// TestTracingDisabledAllocs pins the disabled path at zero allocations —
// the acceptance bar for leaving the hooks in PR2's hot loops.
func TestTracingDisabledAllocs(t *testing.T) {
	var tr *Tracer
	var m *Counter
	id := txid(0x5a)
	if got := testing.AllocsPerRun(1000, func() { hookSequence(tr, m, id) }); got != 0 {
		t.Fatalf("disabled tracing hooks allocate %.1f/op, want 0", got)
	}
}

// TestTracingEnabledAllocs pins the enabled path: with a warm buffer the
// hand-rolled serializer must not allocate per event (documented budget 0;
// the assertion allows ≤1 for bufio flush scheduling jitter).
func TestTracingEnabledAllocs(t *testing.T) {
	tr := NewTracer(io.Discard)
	m := &Counter{}
	id := txid(0x5a)
	hookSequence(tr, m, id)
	if got := testing.AllocsPerRun(1000, func() { hookSequence(tr, m, id) }); got > 1 {
		t.Fatalf("enabled tracing hooks allocate %.1f/op, want ≤1", got)
	}
}
