package types

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func sampleTx(nonce uint64) *Transaction {
	return &Transaction{
		Kind:     KindTransfer,
		From:     Address{1},
		To:       Address{2},
		Nonce:    nonce,
		Value:    100,
		GasLimit: 21000,
		GasPrice: 1,
	}
}

func TestTxIDDeterministicAndCached(t *testing.T) {
	a, b := sampleTx(1), sampleTx(1)
	if a.ID() != b.ID() {
		t.Fatal("identical transactions hash differently")
	}
	if a.ID() != a.ID() {
		t.Fatal("cached hash unstable")
	}
	c := sampleTx(2)
	if a.ID() == c.ID() {
		t.Fatal("different nonces produced the same hash")
	}
}

func TestTxIDCoversAllFields(t *testing.T) {
	base := sampleTx(1)
	mutations := []func(*Transaction){
		func(tx *Transaction) { tx.Kind = KindInvoke },
		func(tx *Transaction) { tx.From = Address{9} },
		func(tx *Transaction) { tx.To = Address{9} },
		func(tx *Transaction) { tx.Value = 999 },
		func(tx *Transaction) { tx.GasLimit = 999 },
		func(tx *Transaction) { tx.GasPrice = 999 },
		func(tx *Transaction) { tx.Data = []byte{1, 2, 3} },
	}
	for i, mutate := range mutations {
		tx := sampleTx(1)
		mutate(tx)
		if tx.ID() == base.ID() {
			t.Errorf("mutation %d did not change the transaction ID", i)
		}
	}
}

func TestTxIDExcludesSignature(t *testing.T) {
	a, b := sampleTx(1), sampleTx(1)
	b.Sig = []byte("signature")
	b.PubKey = []byte("pub")
	if a.ID() != b.ID() {
		t.Fatal("signature must not affect the transaction ID")
	}
}

func TestTxSize(t *testing.T) {
	tx := sampleTx(1)
	tx.Data = make([]byte, 100)
	tx.Sig = make([]byte, 64)
	tx.PubKey = make([]byte, 32)
	want := 1 + 40 + 32 + 100 + 64 + 32
	if tx.Size() != want {
		t.Fatalf("Size = %d, want %d", tx.Size(), want)
	}
}

func TestContractAddressDeterministic(t *testing.T) {
	a := ContractAddress(Address{1}, 0)
	b := ContractAddress(Address{1}, 0)
	c := ContractAddress(Address{1}, 1)
	d := ContractAddress(Address{2}, 0)
	if a != b {
		t.Fatal("contract address not deterministic")
	}
	if a == c || a == d || c == d {
		t.Fatal("contract address collisions")
	}
}

func TestBlockHashCoversContents(t *testing.T) {
	mk := func() *Block {
		return &Block{
			Number:    7,
			Parent:    Hash{1},
			Proposer:  Address{3},
			Timestamp: 4 * time.Second,
			Txs:       []*Transaction{sampleTx(1), sampleTx(2)},
			GasUsed:   42000,
		}
	}
	base := mk()
	baseHash := base.Hash()

	if mk().Hash() != baseHash {
		t.Fatal("identical blocks hash differently")
	}
	b := mk()
	b.Number = 8
	if b.Hash() == baseHash {
		t.Fatal("block number not covered by hash")
	}
	b = mk()
	b.Txs = b.Txs[:1]
	if b.Hash() == baseHash {
		t.Fatal("transaction list not covered by hash")
	}
	b = mk()
	b.StateRoot = Hash{9}
	if b.Hash() == baseHash {
		t.Fatal("state root not covered by hash")
	}
}

func TestBlockTxRootOrderSensitive(t *testing.T) {
	t1, t2 := sampleTx(1), sampleTx(2)
	a := &Block{Txs: []*Transaction{t1, t2}}
	b := &Block{Txs: []*Transaction{t2, t1}}
	if a.TxRoot() == b.TxRoot() {
		t.Fatal("TxRoot must be order sensitive")
	}
}

func TestBlockSize(t *testing.T) {
	b := &Block{Txs: []*Transaction{sampleTx(1)}}
	if b.Size() <= sampleTx(1).Size() {
		t.Fatalf("block size %d should exceed its tx size", b.Size())
	}
}

func TestStringers(t *testing.T) {
	if KindTransfer.String() != "transfer" || KindInvoke.String() != "invoke" || KindDeploy.String() != "deploy" {
		t.Fatal("TxKind strings wrong")
	}
	if StatusBudgetExceeded.String() != "budget exceeded" {
		t.Fatal("ExecStatus string wrong")
	}
	h := HashBytes([]byte("x"))
	if len(h.String()) != 2+64 {
		t.Fatalf("hash string %q has wrong length", h.String())
	}
	var a Address
	if !a.IsZero() {
		t.Fatal("zero address not zero")
	}
}

// Property: SigningBytes is injective over (nonce, value, data) — no two
// distinct transactions share an encoding.
func TestSigningBytesInjectiveProperty(t *testing.T) {
	f := func(n1, n2, v1, v2 uint64, d1, d2 []byte) bool {
		t1 := &Transaction{Nonce: n1, Value: v1, Data: d1}
		t2 := &Transaction{Nonce: n2, Value: v2, Data: d2}
		same := n1 == n2 && v1 == v2 && bytes.Equal(d1, d2)
		enc := bytes.Equal(t1.SigningBytes(), t2.SigningBytes())
		return same == enc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HashBytes over split inputs equals hash over concatenation.
func TestHashBytesConcatProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		joined := append(append([]byte{}, a...), b...)
		return HashBytes(a, b) == HashBytes(joined)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
