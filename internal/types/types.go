// Package types defines the chain-agnostic data structures shared by all
// simulated blockchains: addresses, hashes, transactions, blocks and
// receipts, together with a deterministic binary encoding used for hashing
// and for wire transfer between DIABLO components.
package types

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"
)

// HashSize is the size of a Hash in bytes.
const HashSize = 32

// AddressSize is the size of an Address in bytes.
const AddressSize = 20

// Hash is a 32-byte SHA-256 digest.
type Hash [HashSize]byte

// Address identifies an account or contract.
type Address [AddressSize]byte

// ZeroHash is the all-zero hash.
var ZeroHash Hash

// ZeroAddress is the all-zero address, used as the "to" of contract
// creation transactions.
var ZeroAddress Address

// String renders the hash as 0x-prefixed hex.
func (h Hash) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Short returns the first 4 bytes of the hash in hex, for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is all zeroes.
func (h Hash) IsZero() bool { return h == ZeroHash }

// String renders the address as 0x-prefixed hex.
func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// IsZero reports whether the address is all zeroes.
func (a Address) IsZero() bool { return a == ZeroAddress }

// HashBytes hashes arbitrary data with SHA-256.
func HashBytes(data ...[]byte) Hash {
	h := sha256.New()
	for _, d := range data {
		h.Write(d)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// AddressFromHash derives an address from a hash (its first 20 bytes).
func AddressFromHash(h Hash) Address {
	var a Address
	copy(a[:], h[:AddressSize])
	return a
}

// ContractAddress derives the deterministic address of a contract deployed
// by sender with the given nonce.
func ContractAddress(sender Address, nonce uint64) Address {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], nonce)
	return AddressFromHash(HashBytes(sender[:], buf[:]))
}

// TxKind distinguishes the two DIABLO interaction types plus deployment.
type TxKind uint8

const (
	// KindTransfer is a native asset transfer (the paper's transfer_X).
	KindTransfer TxKind = iota
	// KindInvoke is a smart contract invocation (the paper's invoke_D_Xs).
	KindInvoke
	// KindDeploy creates a new contract from the bytecode in Data.
	KindDeploy
)

func (k TxKind) String() string {
	switch k {
	case KindTransfer:
		return "transfer"
	case KindInvoke:
		return "invoke"
	case KindDeploy:
		return "deploy"
	default:
		return fmt.Sprintf("TxKind(%d)", uint8(k))
	}
}

// Transaction is a signed request from a client to a blockchain. The same
// structure serves every simulated chain; chains differ in how they
// validate, order and execute it.
type Transaction struct {
	Kind     TxKind
	From     Address
	To       Address // recipient or contract; ignored for deploy
	Nonce    uint64  // per-sender sequence number
	Value    uint64  // native amount transferred
	GasLimit uint64  // maximum gas the sender pays for
	GasPrice uint64  // fee per gas unit
	Data     []byte  // calldata (invoke) or bytecode (deploy)

	Sig    []byte // signature over ID()
	PubKey []byte // signer public key

	hash Hash // cached; computed lazily
}

// SigningBytes returns the canonical byte encoding the signature covers.
func (tx *Transaction) SigningBytes() []byte {
	buf := make([]byte, 0, 1+AddressSize*2+8*4+len(tx.Data))
	buf = append(buf, byte(tx.Kind))
	buf = append(buf, tx.From[:]...)
	buf = append(buf, tx.To[:]...)
	var u [8]byte
	for _, v := range []uint64{tx.Nonce, tx.Value, tx.GasLimit, tx.GasPrice} {
		binary.BigEndian.PutUint64(u[:], v)
		buf = append(buf, u[:]...)
	}
	buf = append(buf, tx.Data...)
	return buf
}

// ID returns the transaction hash (over the signed payload, excluding the
// signature itself). The result is cached.
func (tx *Transaction) ID() Hash {
	if tx.hash.IsZero() {
		tx.hash = HashBytes(tx.SigningBytes())
	}
	return tx.hash
}

// Size returns the transaction's wire size in bytes, used to model network
// transmission delay and block size limits.
func (tx *Transaction) Size() int {
	return 1 + 2*AddressSize + 4*8 + len(tx.Data) + len(tx.Sig) + len(tx.PubKey)
}

// Block is a committed batch of transactions.
type Block struct {
	Number    uint64
	Parent    Hash
	Proposer  Address
	Timestamp time.Duration // virtual time at which the block was produced
	Txs       []*Transaction
	StateRoot Hash
	GasUsed   uint64

	hash Hash
}

// HeaderBytes returns the canonical encoding of the block header (the
// transaction list is summarized by its Merkle-style running hash).
func (b *Block) HeaderBytes() []byte {
	var u [8]byte
	buf := make([]byte, 0, 8*3+HashSize*3+AddressSize)
	binary.BigEndian.PutUint64(u[:], b.Number)
	buf = append(buf, u[:]...)
	buf = append(buf, b.Parent[:]...)
	buf = append(buf, b.Proposer[:]...)
	binary.BigEndian.PutUint64(u[:], uint64(b.Timestamp))
	buf = append(buf, u[:]...)
	txRoot := b.TxRoot()
	buf = append(buf, txRoot[:]...)
	buf = append(buf, b.StateRoot[:]...)
	binary.BigEndian.PutUint64(u[:], b.GasUsed)
	buf = append(buf, u[:]...)
	return buf
}

// TxRoot returns a digest committing to the ordered transaction list.
func (b *Block) TxRoot() Hash {
	h := sha256.New()
	for _, tx := range b.Txs {
		id := tx.ID()
		h.Write(id[:])
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Hash returns the block hash. The result is cached; callers must not
// mutate the block after first calling Hash.
func (b *Block) Hash() Hash {
	if b.hash.IsZero() {
		b.hash = HashBytes(b.HeaderBytes())
	}
	return b.hash
}

// Size returns the approximate wire size of the block in bytes.
func (b *Block) Size() int {
	size := 8*3 + HashSize*2 + AddressSize
	for _, tx := range b.Txs {
		size += tx.Size()
	}
	return size
}

// ExecStatus is the outcome of executing a transaction.
type ExecStatus uint8

const (
	// StatusOK means the transaction executed successfully.
	StatusOK ExecStatus = iota
	// StatusReverted means the contract aborted (require failed / revert).
	StatusReverted
	// StatusOutOfGas means execution exhausted the gas limit.
	StatusOutOfGas
	// StatusBudgetExceeded means the VM's hard per-transaction compute
	// budget was exceeded (the paper's "budget exceeded" client error on
	// Algorand, Diem and Solana).
	StatusBudgetExceeded
	// StatusInvalid means the transaction failed validation (bad nonce,
	// insufficient balance, bad signature).
	StatusInvalid
)

func (s ExecStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusReverted:
		return "reverted"
	case StatusOutOfGas:
		return "out of gas"
	case StatusBudgetExceeded:
		return "budget exceeded"
	case StatusInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("ExecStatus(%d)", uint8(s))
	}
}

// Event is a log entry emitted by contract execution.
type Event struct {
	Contract Address
	Name     string
	Data     []uint64
}

// Receipt records the result of executing one transaction in a block.
type Receipt struct {
	TxID     Hash
	Block    uint64
	Status   ExecStatus
	GasUsed  uint64
	Error    string
	Events   []Event
	Contract Address // populated for deployments
}
