// Package trie implements a Merkle radix trie over hex nibbles, in the
// spirit of Ethereum's Merkle Patricia Trie: insertion-order independent,
// with a root hash that commits to the full key/value mapping. Simulated
// chains that model geth maintain account and contract state in this trie;
// the paper notes Solana replaces it with a cheaper structure, which
// package trie also provides as FlatAccumulator.
package trie

import (
	"bytes"
	"crypto/sha256"

	"diablo/internal/types"
)

// node is a 17-ary trie node: children[0..15] index the next hex nibble and
// a node may additionally hold a value terminating at this point.
type node struct {
	children [16]*node
	value    []byte
	hasValue bool

	// hash caches the node's commitment; nil means dirty.
	hash []byte
}

// Trie is a mutable Merkle trie. The zero value is not usable; call New.
type Trie struct {
	root *node
	size int
}

// New returns an empty trie.
func New() *Trie { return &Trie{root: &node{}} }

// nibbles expands a key into hex nibbles.
func nibbles(key []byte) []byte {
	out := make([]byte, 0, len(key)*2)
	for _, b := range key {
		out = append(out, b>>4, b&0x0f)
	}
	return out
}

// Put inserts or updates key -> value. A nil value is stored as empty.
func (t *Trie) Put(key, value []byte) {
	n := t.root
	n.hash = nil
	for _, nb := range nibbles(key) {
		if n.children[nb] == nil {
			n.children[nb] = &node{}
		}
		n = n.children[nb]
		n.hash = nil
	}
	if !n.hasValue {
		t.size++
	}
	n.value = append([]byte(nil), value...)
	n.hasValue = true
}

// Get returns the value for key and whether it exists.
func (t *Trie) Get(key []byte) ([]byte, bool) {
	n := t.root
	for _, nb := range nibbles(key) {
		if n.children[nb] == nil {
			return nil, false
		}
		n = n.children[nb]
	}
	if !n.hasValue {
		return nil, false
	}
	return n.value, true
}

// Delete removes key, reporting whether it was present. Empty branches are
// pruned so the structure (and therefore the root) matches a trie that
// never contained the key.
func (t *Trie) Delete(key []byte) bool {
	path := []*node{t.root}
	nbs := nibbles(key)
	n := t.root
	for _, nb := range nbs {
		if n.children[nb] == nil {
			return false
		}
		n = n.children[nb]
		path = append(path, n)
	}
	if !n.hasValue {
		return false
	}
	n.hasValue = false
	n.value = nil
	t.size--
	// Prune empty leaves bottom-up and mark the path dirty.
	for i := len(path) - 1; i >= 0; i-- {
		path[i].hash = nil
		if i > 0 && path[i].empty() {
			path[i-1].children[nbs[i-1]] = nil
		}
	}
	return true
}

func (n *node) empty() bool {
	if n.hasValue {
		return false
	}
	for _, c := range n.children {
		if c != nil {
			return false
		}
	}
	return true
}

// Len returns the number of stored keys.
func (t *Trie) Len() int { return t.size }

var emptyHash = sha256.Sum256(nil)

// commit computes (and caches) the node's hash.
func (n *node) commit() []byte {
	if n == nil {
		return emptyHash[:]
	}
	if n.hash != nil {
		return n.hash
	}
	h := sha256.New()
	for i, c := range n.children {
		if c == nil {
			continue
		}
		h.Write([]byte{byte(i)})
		h.Write(c.commit())
	}
	if n.hasValue {
		h.Write([]byte{0xff})
		vh := sha256.Sum256(n.value)
		h.Write(vh[:])
	}
	n.hash = h.Sum(nil)
	return n.hash
}

// Root returns the Merkle commitment over the whole mapping. Computing the
// root is incremental: only paths touched since the last Root call are
// rehashed.
func (t *Trie) Root() types.Hash {
	var out types.Hash
	copy(out[:], t.root.commit())
	return out
}

// Walk visits every (key, value) pair in lexicographic key order.
func (t *Trie) Walk(fn func(key, value []byte) bool) {
	var walk func(n *node, prefix []byte) bool
	walk = func(n *node, prefix []byte) bool {
		if n.hasValue {
			if !fn(packNibbles(prefix), n.value) {
				return false
			}
		}
		for i := 0; i < 16; i++ {
			if c := n.children[i]; c != nil {
				if !walk(c, append(prefix, byte(i))) {
					return false
				}
			}
		}
		return true
	}
	walk(t.root, nil)
}

func packNibbles(nbs []byte) []byte {
	out := make([]byte, len(nbs)/2)
	for i := range out {
		out[i] = nbs[2*i]<<4 | nbs[2*i+1]
	}
	return out
}

// Copy returns a deep copy of the trie (used to snapshot state when a chain
// forks).
func (t *Trie) Copy() *Trie {
	var cp func(n *node) *node
	cp = func(n *node) *node {
		if n == nil {
			return nil
		}
		out := &node{value: append([]byte(nil), n.value...), hasValue: n.hasValue, hash: n.hash}
		for i, c := range n.children {
			out.children[i] = cp(c)
		}
		return out
	}
	return &Trie{root: cp(t.root), size: t.size}
}

// Equal reports whether two tries hold the same mapping (via root hashes).
func (t *Trie) Equal(o *Trie) bool {
	return bytes.Equal(t.root.commit(), o.root.commit())
}

// FlatAccumulator is the cheap alternative state commitment used by the
// simulated Solana: a running hash over (key, value) updates. It is orders
// of magnitude faster than a trie but its commitment depends on update
// order — matching Solana's design choice of trading the Merkle Patricia
// Trie for speed (the paper, §5.2).
type FlatAccumulator struct {
	state map[string][]byte
	acc   types.Hash
}

// NewFlat returns an empty accumulator.
func NewFlat() *FlatAccumulator {
	return &FlatAccumulator{state: make(map[string][]byte)}
}

// Put records key -> value and folds the update into the commitment.
func (f *FlatAccumulator) Put(key, value []byte) {
	f.state[string(key)] = append([]byte(nil), value...)
	f.acc = types.HashBytes(f.acc[:], key, value)
}

// Get returns the value for key.
func (f *FlatAccumulator) Get(key []byte) ([]byte, bool) {
	v, ok := f.state[string(key)]
	return v, ok
}

// Len returns the number of keys.
func (f *FlatAccumulator) Len() int { return len(f.state) }

// Root returns the running commitment.
func (f *FlatAccumulator) Root() types.Hash { return f.acc }
