package trie

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	tr := New()
	tr.Put([]byte("alpha"), []byte("1"))
	tr.Put([]byte("beta"), []byte("2"))
	tr.Put([]byte("al"), []byte("prefix"))

	for _, c := range []struct{ k, v string }{{"alpha", "1"}, {"beta", "2"}, {"al", "prefix"}} {
		v, ok := tr.Get([]byte(c.k))
		if !ok || string(v) != c.v {
			t.Fatalf("Get(%q) = %q,%v want %q", c.k, v, ok, c.v)
		}
	}
	if _, ok := tr.Get([]byte("alph")); ok {
		t.Fatal("found key that is only a path prefix")
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("found missing key")
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
}

func TestOverwrite(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2"))
	v, _ := tr.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", tr.Len())
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	tr := New()
	tr.Put(nil, []byte("rootval"))
	v, ok := tr.Get(nil)
	if !ok || string(v) != "rootval" {
		t.Fatal("empty key not stored at root")
	}
	tr.Put([]byte("k"), nil)
	if _, ok := tr.Get([]byte("k")); !ok {
		t.Fatal("nil value not stored")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), []byte("1"))
	tr.Put([]byte("ab"), []byte("2"))
	rootWithBoth := tr.Root()

	if !tr.Delete([]byte("ab")) {
		t.Fatal("Delete returned false for present key")
	}
	if tr.Delete([]byte("ab")) {
		t.Fatal("Delete returned true for absent key")
	}
	if tr.Delete([]byte("zz")) {
		t.Fatal("Delete returned true for never-present key")
	}
	if _, ok := tr.Get([]byte("ab")); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tr.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatal("sibling key damaged by delete")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}

	// Root after deletion must equal a fresh trie without the key.
	fresh := New()
	fresh.Put([]byte("a"), []byte("1"))
	if tr.Root() != fresh.Root() {
		t.Fatal("root after delete differs from never-inserted trie")
	}
	if tr.Root() == rootWithBoth {
		t.Fatal("root unchanged by delete")
	}
}

func TestRootInsertionOrderIndependent(t *testing.T) {
	keys := []string{"apple", "app", "banana", "band", "bandana", "", "z"}
	a, b := New(), New()
	for _, k := range keys {
		a.Put([]byte(k), []byte("v-"+k))
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Put([]byte(keys[i]), []byte("v-"+keys[i]))
	}
	if a.Root() != b.Root() {
		t.Fatal("root depends on insertion order")
	}
	if !a.Equal(b) {
		t.Fatal("Equal disagrees with Root")
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := New()
	a.Put([]byte("k"), []byte("v"))
	b := New()
	b.Put([]byte("k"), []byte("w"))
	if a.Root() == b.Root() {
		t.Fatal("different values, same root")
	}
	c := New()
	c.Put([]byte("j"), []byte("v"))
	if a.Root() == c.Root() {
		t.Fatal("different keys, same root")
	}
	if New().Root() == a.Root() {
		t.Fatal("empty trie root equals non-empty root")
	}
}

func TestIncrementalRootMatchesFresh(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put([]byte(fmt.Sprintf("key-%d", i)), []byte{byte(i)})
		_ = tr.Root() // force caching every step
	}
	fresh := New()
	for i := 0; i < 100; i++ {
		fresh.Put([]byte(fmt.Sprintf("key-%d", i)), []byte{byte(i)})
	}
	if tr.Root() != fresh.Root() {
		t.Fatal("incremental caching corrupted the root")
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	tr := New()
	keys := []string{"b", "a", "ab", "aa", "c"}
	for _, k := range keys {
		tr.Put([]byte(k), []byte(k))
	}
	var got []string
	tr.Walk(func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a", "aa", "ab", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	// Early termination.
	count := 0
	tr.Walk(func(k, v []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("walk did not stop early: %d", count)
	}
}

func TestCopyIsDeep(t *testing.T) {
	tr := New()
	tr.Put([]byte("k"), []byte("v"))
	cp := tr.Copy()
	cp.Put([]byte("k"), []byte("changed"))
	cp.Put([]byte("new"), []byte("x"))
	if v, _ := tr.Get([]byte("k")); string(v) != "v" {
		t.Fatal("copy mutation leaked into original")
	}
	if _, ok := tr.Get([]byte("new")); ok {
		t.Fatal("copy insertion leaked into original")
	}
	if tr.Root() == cp.Root() {
		t.Fatal("diverged tries share a root")
	}
}

// Property: Put/Get round-trips for arbitrary keys and values.
func TestPutGetRoundTripProperty(t *testing.T) {
	f := func(pairs map[string][]byte) bool {
		tr := New()
		for k, v := range pairs {
			tr.Put([]byte(k), v)
		}
		for k, v := range pairs {
			got, ok := tr.Get([]byte(k))
			if !ok || string(got) != string(v) {
				return false
			}
		}
		return tr.Len() == len(pairs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: root is a pure function of the mapping, regardless of
// insert/delete history.
func TestRootHistoryIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		final := map[string][]byte{}
		tr := New()
		// Random history of puts and deletes.
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			if rng.Intn(3) == 0 {
				tr.Delete([]byte(k))
				delete(final, k)
			} else {
				v := []byte{byte(rng.Intn(256))}
				tr.Put([]byte(k), v)
				final[k] = v
			}
			if rng.Intn(10) == 0 {
				_ = tr.Root()
			}
		}
		fresh := New()
		for k, v := range final {
			fresh.Put([]byte(k), v)
		}
		return tr.Root() == fresh.Root() && tr.Len() == len(final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatAccumulator(t *testing.T) {
	f := NewFlat()
	empty := f.Root()
	f.Put([]byte("a"), []byte("1"))
	if f.Root() == empty {
		t.Fatal("root unchanged by Put")
	}
	v, ok := f.Get([]byte("a"))
	if !ok || string(v) != "1" {
		t.Fatal("Get failed")
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
	// Order dependence is the documented behaviour.
	a, b := NewFlat(), NewFlat()
	a.Put([]byte("x"), []byte("1"))
	a.Put([]byte("y"), []byte("2"))
	b.Put([]byte("y"), []byte("2"))
	b.Put([]byte("x"), []byte("1"))
	if a.Root() == b.Root() {
		t.Fatal("flat accumulator unexpectedly order independent")
	}
}

func BenchmarkTriePut(b *testing.B) {
	tr := New()
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("account-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i%1000], []byte{byte(i)})
	}
}

func BenchmarkTrieRootIncremental(b *testing.B) {
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Put([]byte(fmt.Sprintf("account-%d", i)), []byte{1})
	}
	_ = tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put([]byte(fmt.Sprintf("account-%d", i%10000)), []byte{byte(i)})
		_ = tr.Root()
	}
}

func BenchmarkFlatPut(b *testing.B) {
	f := NewFlat()
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("account-%d", i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Put(keys[i%1000], []byte{byte(i)})
	}
}
