package pexec

//lint:allowfile concurrency parallel block lanes speculate against an immutable pre-block snapshot with fully lane-local scratch state; the serial commit scan orders and validates results canonically, and TestParallelBlockMatchesSerial proves byte-identical receipts and state roots vs the serial path

import (
	"sync"
	"sync/atomic"
)

// Fan runs n independent jobs across a pool of `workers` goroutines and
// waits for all of them, mirroring core.ForEach (the audited sweep pool).
// Each job receives the worker index (for per-worker scratch such as VM
// interpreters, which are reused but never shared) and the job index.
//
// Jobs must be fully isolated: results go into per-index slots and every
// mutable structure is lane-local, so output is bit-identical whichever
// worker runs a job and in whatever order jobs interleave. workers <= 1
// (or n == 1) degenerates to a plain serial loop on the caller's
// goroutine — no goroutines are ever spawned on the serial path.
func Fan(workers, n int, job func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
