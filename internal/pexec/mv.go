package pexec

// version is one committed write in a key's version chain.
type version[V any] struct {
	tx  int // canonical index of the writer
	val V
	del bool // tombstone: the writer deleted the key
}

// Store is a multi-version state store: per key, a chain of committed
// versions ordered by the writer's canonical transaction index. The commit
// scan publishes versions in canonical order, so chains are append-only
// and nondecreasing in tx index; reads resolve against the highest
// committed version below the reader's own index and fall through to the
// pre-block base state when no such version exists.
type Store[V any] struct {
	chains map[Key][]version[V]
}

// NewStore returns an empty store.
func NewStore[V any]() *Store[V] {
	return &Store[V]{chains: make(map[Key][]version[V])}
}

// Publish appends tx's committed write of k. Within one transaction later
// publishes shadow earlier ones (the chain keeps both; Read takes the
// newest), reproducing the transaction's final effect on k.
func (s *Store[V]) Publish(k Key, tx int, v V, del bool) {
	s.chains[k] = append(s.chains[k], version[V]{tx: tx, val: v, del: del})
}

// Read resolves k for a reader at canonical index `below`: the value of
// the highest committed version with tx < below. ok reports whether such a
// version exists (false = fall through to the base state); del reports a
// tombstone (the key is deleted, do not fall through).
func (s *Store[V]) Read(k Key, below int) (v V, del, ok bool) {
	chain := s.chains[k]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].tx < below {
			return chain[i].val, chain[i].del, true
		}
	}
	return v, false, false
}

// SumBelow sums, as signed deltas, the values of every version of k with
// tx < below. Entry-count sentinels are published as per-transaction
// deltas, so a bounded store's visible length is base length plus this
// sum — correct regardless of which earlier writers were commits and
// which were fallback re-executions.
func (s *Store[V]) SumBelow(k Key, below int, asDelta func(V) int) int {
	sum := 0
	for _, ver := range s.chains[k] {
		if ver.tx < below {
			sum += asDelta(ver.val)
		}
	}
	return sum
}

// HasWriter reports whether any version of k has been published.
func (s *Store[V]) HasWriter(k Key) bool {
	return len(s.chains[k]) > 0
}

// Versions returns the length of k's version chain (diagnostics/tests).
func (s *Store[V]) Versions(k Key) int { return len(s.chains[k]) }
