package pexec

// Graph is a block's conflict graph, built from the speculative RWSets of
// phase one. There is an edge i -> j (i < j) when transaction i
// speculatively wrote a key transaction j read: j's speculative result saw
// pre-block state for that key, so if i's write commits (or even might
// have happened — an aborted i re-executes with unknown writes covered
// separately by the commit scan), j's result is stale and j must
// re-execute. Only read-after-write edges invalidate: write-after-write is
// resolved by canonical-order replay of the write logs, and
// write-after-read needs nothing because every speculation reads pre-block
// state.
type Graph struct {
	hazard []bool
	edges  int
}

// BuildGraph computes the conflict graph. sets[i] may be nil for a
// transaction that did not speculate (e.g. an in-band deploy); it is
// marked hazardous itself and contributes no speculative writes — its
// actual writes surface during the commit scan's fallback bookkeeping.
func BuildGraph(sets []*RWSet) *Graph { return BuildGraphObserved(sets, nil) }

// BuildGraphObserved is BuildGraph with a per-edge observer: onEdge is
// called once per read-after-write conflict with the reading transaction's
// index and the conflicting key, which is how the span layer attributes
// fallbacks to hot state keys. A nil observer costs nothing.
func BuildGraphObserved(sets []*RWSet, onEdge func(j int, k Key)) *Graph {
	g := &Graph{hazard: make([]bool, len(sets))}
	written := make(map[Key]struct{})
	for j, set := range sets {
		if set == nil {
			g.hazard[j] = true
			continue
		}
		for _, k := range set.reads {
			if _, ok := written[k]; ok {
				g.hazard[j] = true
				g.edges++
				if onEdge != nil {
					onEdge(j, k)
				}
			}
		}
		for _, k := range set.writes {
			written[k] = struct{}{}
		}
	}
	return g
}

// Hazard reports whether transaction j has an incoming read-after-write
// edge from any earlier transaction (j must not commit its speculation).
func (g *Graph) Hazard(j int) bool { return g.hazard[j] }

// Edges returns the number of read-after-write conflicts found
// (diagnostics: 0 means the whole block committed speculatively).
func (g *Graph) Edges() int { return g.edges }
