// Package pexec provides the building blocks for parallel intra-block
// transaction execution (Octopus-style, see DESIGN.md §14): state keys,
// per-transaction read/write sets, a per-block conflict graph, a
// multi-version state store and a worker pool.
//
// The executor in internal/chains/chain uses them in two phases. Phase one
// speculates every transaction of a block concurrently against the
// immutable pre-block state, recording each transaction's reads and writes
// into an RWSet. Phase two is a serial commit scan in canonical order: a
// transaction whose reads were untouched by any earlier writer commits its
// speculative result as-is; everything else re-executes sequentially
// against the multi-version store, which resolves each read to the highest
// committed version below the reader's canonical index. Because the scan
// order, the conflict test and the speculative results are all independent
// of worker scheduling, the committed receipts and state are byte-identical
// to serial execution.
package pexec

import "strconv"

// Space partitions the key universe so different kinds of state never
// collide: an account's balance, its nonce, a contract storage slot, an
// AVM app-state key, the contract registry itself, a gas-cache entry, and
// the entry-count sentinels of bounded stores.
type Space uint8

// The key spaces.
const (
	SpaceBalance Space = iota
	SpaceNonce
	SpaceStorage
	SpaceAppState
	SpaceContract
	SpaceCache
	// SpaceLen and SpaceAppLen are per-contract entry-count sentinels.
	// Bounded stores read them on every admission check and write them on
	// every slot creation or deletion, so two transactions racing a
	// capacity bound always conflict.
	SpaceLen
	SpaceAppLen
)

// AddrSize matches types.AddressSize without importing it (pexec stays
// dependency-free below the chain layer).
const AddrSize = 20

// Key identifies one unit of replicated state.
type Key struct {
	Space Space
	Addr  [AddrSize]byte
	Slot  uint64
}

// spaceNames are the Key.String prefixes, indexable by Space.
var spaceNames = [...]string{
	SpaceBalance:  "balance",
	SpaceNonce:    "nonce",
	SpaceStorage:  "storage",
	SpaceAppState: "appstate",
	SpaceContract: "contract",
	SpaceCache:    "cache",
	SpaceLen:      "len",
	SpaceAppLen:   "applen",
}

const keyHexDigits = "0123456789abcdef"

// String renders the key as "space:addrhex" (slotted spaces append
// ":slot"), the stable form conflict-attribution records carry.
func (k Key) String() string {
	name := "space?"
	if int(k.Space) < len(spaceNames) {
		name = spaceNames[k.Space]
	}
	buf := make([]byte, 0, len(name)+1+2*AddrSize+21)
	buf = append(buf, name...)
	buf = append(buf, ':')
	for _, b := range k.Addr {
		buf = append(buf, keyHexDigits[b>>4], keyHexDigits[b&0xf])
	}
	switch k.Space {
	case SpaceStorage, SpaceAppState, SpaceCache:
		buf = append(buf, ':')
		buf = strconv.AppendUint(buf, k.Slot, 10)
	}
	return string(buf)
}

// RWSet records the state a transaction touched: a deduplicated read set
// and a deduplicated write set. Conflict detection between transactions i
// and j (i earlier) only needs Writes(i) ∩ Reads(j), but both sets are kept
// because a fallback re-execution's writes feed later validity checks.
type RWSet struct {
	reads     []Key
	writes    []Key
	readSeen  map[Key]struct{}
	writeSeen map[Key]struct{}
}

// NewRWSet returns an empty set.
func NewRWSet() *RWSet {
	return &RWSet{
		readSeen:  make(map[Key]struct{}),
		writeSeen: make(map[Key]struct{}),
	}
}

// Read records a read of k.
func (s *RWSet) Read(k Key) {
	if _, ok := s.readSeen[k]; ok {
		return
	}
	s.readSeen[k] = struct{}{}
	s.reads = append(s.reads, k)
}

// Write records a write of k.
func (s *RWSet) Write(k Key) {
	if _, ok := s.writeSeen[k]; ok {
		return
	}
	s.writeSeen[k] = struct{}{}
	s.writes = append(s.writes, k)
}

// Reads returns the read keys in first-touch order.
func (s *RWSet) Reads() []Key { return s.reads }

// Writes returns the written keys in first-touch order.
func (s *RWSet) Writes() []Key { return s.writes }

// DidRead reports whether k is in the read set.
func (s *RWSet) DidRead(k Key) bool {
	_, ok := s.readSeen[k]
	return ok
}

// DidWrite reports whether k is in the write set.
func (s *RWSet) DidWrite(k Key) bool {
	_, ok := s.writeSeen[k]
	return ok
}
