package pexec

import (
	"testing"
)

func k(space Space, b byte, slot uint64) Key {
	return Key{Space: space, Addr: [AddrSize]byte{b}, Slot: slot}
}

func TestRWSetDedupAndOrder(t *testing.T) {
	s := NewRWSet()
	s.Read(k(SpaceBalance, 1, 0))
	s.Read(k(SpaceBalance, 2, 0))
	s.Read(k(SpaceBalance, 1, 0)) // duplicate
	s.Write(k(SpaceStorage, 1, 7))
	s.Write(k(SpaceStorage, 1, 7)) // duplicate
	if len(s.Reads()) != 2 || len(s.Writes()) != 1 {
		t.Fatalf("reads=%d writes=%d", len(s.Reads()), len(s.Writes()))
	}
	if s.Reads()[0] != k(SpaceBalance, 1, 0) || s.Reads()[1] != k(SpaceBalance, 2, 0) {
		t.Fatal("first-touch order lost")
	}
	if !s.DidRead(k(SpaceBalance, 2, 0)) || s.DidRead(k(SpaceBalance, 3, 0)) {
		t.Fatal("DidRead wrong")
	}
	if !s.DidWrite(k(SpaceStorage, 1, 7)) || s.DidWrite(k(SpaceStorage, 1, 8)) {
		t.Fatal("DidWrite wrong")
	}
}

func TestKeySpacesDisjoint(t *testing.T) {
	// The same address and slot in different spaces are different keys.
	a := k(SpaceBalance, 1, 0)
	b := k(SpaceNonce, 1, 0)
	if a == b {
		t.Fatal("spaces collide")
	}
	s := NewRWSet()
	s.Read(a)
	if s.DidRead(b) {
		t.Fatal("cross-space read leaked")
	}
}

func TestStoreReadResolvesHighestBelow(t *testing.T) {
	st := NewStore[uint64]()
	key := k(SpaceStorage, 1, 5)
	st.Publish(key, 2, 20, false)
	st.Publish(key, 4, 40, false)
	st.Publish(key, 7, 70, false)

	if _, _, ok := st.Read(key, 2); ok {
		t.Fatal("reader below every writer should miss")
	}
	if v, _, ok := st.Read(key, 3); !ok || v != 20 {
		t.Fatalf("reader at 3 got %d", v)
	}
	if v, _, ok := st.Read(key, 7); !ok || v != 40 {
		t.Fatalf("reader at 7 got %d", v)
	}
	if v, _, ok := st.Read(key, 100); !ok || v != 70 {
		t.Fatalf("reader at 100 got %d", v)
	}
	if st.Versions(key) != 3 || !st.HasWriter(key) {
		t.Fatal("version accounting wrong")
	}
}

func TestStoreTombstones(t *testing.T) {
	st := NewStore[uint64]()
	key := k(SpaceAppState, 2, 9)
	st.Publish(key, 1, 10, false)
	st.Publish(key, 3, 0, true) // tx 3 deleted the key
	if _, del, ok := st.Read(key, 4); !ok || !del {
		t.Fatal("tombstone not visible")
	}
	if v, del, ok := st.Read(key, 2); !ok || del || v != 10 {
		t.Fatal("pre-delete version lost")
	}
}

func TestStoreIntraTxShadowing(t *testing.T) {
	// Within one transaction, later publishes shadow earlier ones.
	st := NewStore[uint64]()
	key := k(SpaceStorage, 1, 1)
	st.Publish(key, 2, 5, false)
	st.Publish(key, 2, 6, false)
	if v, _, ok := st.Read(key, 3); !ok || v != 6 {
		t.Fatalf("got %d, want the transaction's final write", v)
	}
}

func TestStoreSumBelow(t *testing.T) {
	st := NewStore[uint64]()
	key := k(SpaceLen, 1, 0)
	asDelta := func(v uint64) int { return int(int64(v)) }
	minusOne := int64(-1)
	st.Publish(key, 1, uint64(int64(2)), false) // tx1 created 2 entries
	st.Publish(key, 3, uint64(minusOne), false) // tx3 deleted one
	if got := st.SumBelow(key, 2, asDelta); got != 2 {
		t.Fatalf("sum below 2 = %d", got)
	}
	if got := st.SumBelow(key, 4, asDelta); got != 1 {
		t.Fatalf("sum below 4 = %d", got)
	}
	if got := st.SumBelow(key, 1, asDelta); got != 0 {
		t.Fatalf("sum below 1 = %d", got)
	}
}

func TestGraphReadAfterWriteHazards(t *testing.T) {
	mk := func(reads, writes []Key) *RWSet {
		s := NewRWSet()
		for _, r := range reads {
			s.Read(r)
		}
		for _, w := range writes {
			s.Write(w)
		}
		return s
	}
	bal := func(b byte) Key { return k(SpaceBalance, b, 0) }

	sets := []*RWSet{
		mk([]Key{bal(1)}, []Key{bal(1), bal(2)}), // tx0 writes 1,2
		mk([]Key{bal(3)}, []Key{bal(3)}),         // tx1 disjoint
		mk([]Key{bal(2)}, []Key{bal(4)}),         // tx2 reads tx0's write
		nil,                                      // tx3 did not speculate
		mk([]Key{bal(4)}, nil),                   // tx4 reads tx2's write
	}
	g := BuildGraph(sets)
	if g.Hazard(0) || g.Hazard(1) {
		t.Fatal("independent transactions flagged")
	}
	if !g.Hazard(2) {
		t.Fatal("read-after-write missed")
	}
	if !g.Hazard(3) {
		t.Fatal("non-speculated transaction must be hazardous")
	}
	if !g.Hazard(4) {
		t.Fatal("transitive read of a speculative write missed")
	}
	if g.Edges() != 2 {
		t.Fatalf("edges = %d", g.Edges())
	}
}

func TestGraphWriteAfterWriteIsNoHazard(t *testing.T) {
	// Two writers of the same key with no read overlap: canonical-order
	// replay resolves the order, no re-execution needed.
	key := k(SpaceStorage, 1, 1)
	w := func() *RWSet { s := NewRWSet(); s.Write(key); return s }
	g := BuildGraph([]*RWSet{w(), w()})
	if g.Hazard(0) || g.Hazard(1) {
		t.Fatal("write-after-write flagged as hazard")
	}
}

func TestFanCoversAllJobsOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]int, n)
		Fan(workers, n, func(worker, i int) {
			counts[i]++ // per-index slot: no synchronization needed
			if worker < 0 || worker >= workers {
				t.Errorf("worker index %d out of range", worker)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
	// Degenerate shapes.
	ran := 0
	Fan(4, 0, func(int, int) { ran++ })
	if ran != 0 {
		t.Fatal("n=0 ran jobs")
	}
	Fan(0, 1, func(worker, i int) {
		if worker != 0 {
			t.Fatal("serial path must report worker 0")
		}
		ran++
	})
	if ran != 1 {
		t.Fatal("n=1 did not run")
	}
}
