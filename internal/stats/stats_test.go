package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func rec(submit, commit time.Duration) TxRecord {
	return TxRecord{Submit: submit, Commit: commit}
}

func TestSummarizeBasics(t *testing.T) {
	records := []TxRecord{
		rec(0, 2*time.Second),
		rec(time.Second, 3*time.Second),
		rec(2*time.Second, 6*time.Second),
		{Submit: 3 * time.Second, Commit: -1},                // pending
		{Submit: 4 * time.Second, Commit: -1, Aborted: true}, // aborted
	}
	s := Summarize(records, 10*time.Second)
	if s.Submitted != 5 || s.Committed != 3 || s.Pending != 1 || s.Aborted != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.ThroughputTPS != 0.3 {
		t.Fatalf("throughput = %v, want 0.3", s.ThroughputTPS)
	}
	if s.AvgLoadTPS != 0.5 {
		t.Fatalf("load = %v, want 0.5", s.AvgLoadTPS)
	}
	// latencies: 2s, 2s, 4s -> avg 2.666s, median 2s, max 4s
	if s.MedianLatency != 2*time.Second {
		t.Fatalf("median = %v, want 2s", s.MedianLatency)
	}
	if s.MaxLatency != 4*time.Second {
		t.Fatalf("max = %v, want 4s", s.MaxLatency)
	}
	wantAvg := (2*time.Second + 2*time.Second + 4*time.Second) / 3
	if s.AvgLatency != wantAvg {
		t.Fatalf("avg = %v, want %v", s.AvgLatency, wantAvg)
	}
	if s.CommitRatio != 0.6 {
		t.Fatalf("ratio = %v, want 0.6", s.CommitRatio)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 0)
	if s.Submitted != 0 || s.ThroughputTPS != 0 || s.AvgLatency != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeInferredDuration(t *testing.T) {
	records := []TxRecord{rec(0, 4*time.Second), rec(time.Second, 2*time.Second)}
	s := Summarize(records, 0)
	if s.Duration != 4*time.Second {
		t.Fatalf("inferred duration = %v, want 4s", s.Duration)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want time.Duration
	}{{50, 5}, {95, 10}, {99, 10}, {10, 1}, {100, 10}}
	for _, c := range cases {
		if got := Percentile(lats, c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(time.Second, 10*time.Second)
	for i := 0; i < 30; i++ {
		ts.Add(time.Duration(i) * 100 * time.Millisecond) // 0..2.9s
	}
	if ts.Counts[0] != 10 || ts.Counts[1] != 10 || ts.Counts[2] != 10 {
		t.Fatalf("bucket counts wrong: %v", ts.Counts[:3])
	}
	if ts.Total() != 30 {
		t.Fatalf("total = %d, want 30", ts.Total())
	}
	if ts.Peak() != 10 {
		t.Fatalf("peak = %v, want 10", ts.Peak())
	}
	if ts.Rate(5) != 0 {
		t.Fatalf("empty bucket rate = %v", ts.Rate(5))
	}
}

func TestTimeSeriesGrowsAndIgnoresNegative(t *testing.T) {
	ts := NewTimeSeries(time.Second, time.Second)
	ts.Add(100 * time.Second)
	ts.Add(-time.Second)
	if ts.Total() != 1 {
		t.Fatalf("total = %d, want 1", ts.Total())
	}
	if ts.Counts[100] != 1 {
		t.Fatal("event not placed in grown bucket")
	}
}

func TestCDFBasics(t *testing.T) {
	lats := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	c := NewCDF(lats, 8) // half the population never committed
	if got := c.At(2 * time.Second); got != 0.25 {
		t.Fatalf("At(2s) = %v, want 0.25", got)
	}
	if got := c.At(10 * time.Second); got != 0.5 {
		t.Fatalf("At(10s) = %v, want plateau 0.5", got)
	}
	if c.Plateau() != 0.5 {
		t.Fatalf("plateau = %v, want 0.5", c.Plateau())
	}
	if q := c.Quantile(0.25); q != 2*time.Second {
		t.Fatalf("Quantile(0.25) = %v, want 2s", q)
	}
	if q := c.Quantile(0.9); q != -1 {
		t.Fatalf("Quantile above plateau = %v, want -1", q)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]time.Duration{time.Second}, 1)
	pts := c.Points(5, 4*time.Second)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if pts[0][1] != 0 && pts[0][0] != 0 {
		t.Fatalf("first point should be at 0: %v", pts[0])
	}
	if pts[4][1] != 1 {
		t.Fatalf("last point fraction = %v, want 1", pts[4][1])
	}
}

// Property: a CDF is monotonically non-decreasing and bounded by its plateau.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		lats := make([]time.Duration, count)
		for i := range lats {
			lats[i] = time.Duration(rng.Intn(1000)) * time.Millisecond
		}
		c := NewCDF(lats, count*2)
		prev := -1.0
		for d := time.Duration(0); d <= time.Second; d += 10 * time.Millisecond {
			v := c.At(d)
			if v < prev || v > c.Plateau()+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are drawn from the input and ordered by p.
func TestPercentileOrderedProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		lats := make([]time.Duration, count)
		for i := range lats {
			lats[i] = time.Duration(rng.Intn(10000)) * time.Millisecond
		}
		p50 := Percentile(lats, 50)
		p95 := Percentile(lats, 95)
		p99 := Percentile(lats, 99)
		return p50 <= p95 && p95 <= p99
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize counts always partition the record set.
func TestSummarizePartitionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n % 100)
		records := make([]TxRecord, count)
		for i := range records {
			records[i].Submit = time.Duration(rng.Intn(100)) * time.Second
			switch rng.Intn(3) {
			case 0:
				records[i].Commit = records[i].Submit + time.Duration(rng.Intn(30))*time.Second
			case 1:
				records[i].Commit = -1
			case 2:
				records[i].Commit = -1
				records[i].Aborted = true
			}
		}
		s := Summarize(records, time.Minute)
		return s.Committed+s.Pending+s.Aborted == s.Submitted
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatTPS(t *testing.T) {
	if got := FormatTPS(8845); got != "8.8K TPS" {
		t.Fatalf("FormatTPS(8845) = %q", got)
	}
	if got := FormatTPS(323); got != "323 TPS" {
		t.Fatalf("FormatTPS(323) = %q", got)
	}
}
