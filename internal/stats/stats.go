// Package stats computes the performance metrics DIABLO reports: average
// throughput, average and percentile latency, commit ratios, per-second
// time series and latency CDFs. Definitions follow the paper: throughput is
// committed transactions divided by experiment duration; latency is the
// difference between a transaction's decision time and submission time as
// recorded by the Secondaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// TxRecord is the per-transaction observation a Secondary produces.
type TxRecord struct {
	// Submit is the time the transaction was sent to a blockchain node.
	Submit time.Duration
	// Commit is the time the transaction was observed inside a block, or
	// negative if it was never committed (dropped or still pending when the
	// experiment ended).
	Commit time.Duration
	// Aborted reports that the blockchain definitively rejected the
	// transaction (e.g. out of gas) rather than leaving it pending.
	Aborted bool
}

// Committed reports whether the transaction made it into a block.
func (r TxRecord) Committed() bool { return r.Commit >= 0 && !r.Aborted }

// Latency returns the commit latency, or 0 for uncommitted transactions.
func (r TxRecord) Latency() time.Duration {
	if !r.Committed() {
		return 0
	}
	return r.Commit - r.Submit
}

// Summary aggregates an experiment's transaction records.
type Summary struct {
	Submitted int
	Committed int
	Aborted   int
	Pending   int
	// CommittedInWindow counts commits that landed within the workload
	// window; stragglers committed during the observation tail count
	// toward Committed and the latency distribution but not throughput.
	CommittedInWindow int
	Duration          time.Duration // workload window
	AvgLoadTPS        float64       // submitted / duration
	ThroughputTPS     float64       // committed within window / duration
	AvgLatency        time.Duration
	MedianLatency     time.Duration
	P95Latency        time.Duration
	P99Latency        time.Duration
	MaxLatency        time.Duration
	CommitRatio       float64 // committed / submitted
}

// Summarize computes a Summary over records. duration must be the length of
// the observation window; if zero it is inferred as the maximum commit or
// submit timestamp seen.
func Summarize(records []TxRecord, duration time.Duration) Summary {
	var s Summary
	s.Submitted = len(records)
	var lats []time.Duration
	var maxT time.Duration
	for _, r := range records {
		if r.Submit > maxT {
			maxT = r.Submit
		}
		if r.Commit > maxT {
			maxT = r.Commit
		}
		switch {
		case r.Aborted:
			s.Aborted++
		case r.Committed():
			s.Committed++
			lats = append(lats, r.Latency())
		default:
			s.Pending++
		}
	}
	if duration <= 0 {
		duration = maxT
	}
	s.Duration = duration
	for _, r := range records {
		if r.Committed() && r.Commit <= duration {
			s.CommittedInWindow++
		}
	}
	if duration > 0 {
		s.ThroughputTPS = float64(s.CommittedInWindow) / duration.Seconds()
		s.AvgLoadTPS = float64(s.Submitted) / duration.Seconds()
	}
	if s.Submitted > 0 {
		s.CommitRatio = float64(s.Committed) / float64(s.Submitted)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		s.AvgLatency = sum / time.Duration(len(lats))
		s.MedianLatency = percentileSorted(lats, 50)
		s.P95Latency = percentileSorted(lats, 95)
		s.P99Latency = percentileSorted(lats, 99)
		s.MaxLatency = lats[len(lats)-1]
	}
	return s
}

// percentileSorted returns the p-th percentile (0 < p <= 100) of an
// ascending-sorted slice using nearest-rank.
func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Percentile returns the p-th percentile of latencies (unsorted input).
func Percentile(lats []time.Duration, p float64) time.Duration {
	c := append([]time.Duration(nil), lats...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return percentileSorted(c, p)
}

// TimeSeries buckets transaction events into fixed-width intervals, as used
// to plot submitted/committed transactions per second.
type TimeSeries struct {
	Bucket time.Duration
	Counts []int
}

// NewTimeSeries creates a series with the given bucket width covering
// [0, horizon).
func NewTimeSeries(bucket, horizon time.Duration) *TimeSeries {
	if bucket <= 0 {
		panic("stats: bucket must be positive")
	}
	n := int(horizon / bucket)
	if horizon%bucket != 0 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return &TimeSeries{Bucket: bucket, Counts: make([]int, n)}
}

// Add records one event at time t, growing the series if needed.
func (ts *TimeSeries) Add(t time.Duration) {
	if t < 0 {
		return
	}
	i := int(t / ts.Bucket)
	for i >= len(ts.Counts) {
		ts.Counts = append(ts.Counts, 0)
	}
	ts.Counts[i]++
}

// Rate returns the per-second rate of bucket i.
func (ts *TimeSeries) Rate(i int) float64 {
	if i < 0 || i >= len(ts.Counts) {
		return 0
	}
	return float64(ts.Counts[i]) / ts.Bucket.Seconds()
}

// Peak returns the maximum per-second rate across buckets.
func (ts *TimeSeries) Peak() float64 {
	var max float64
	for i := range ts.Counts {
		if r := ts.Rate(i); r > max {
			max = r
		}
	}
	return max
}

// Total returns the total number of events recorded.
func (ts *TimeSeries) Total() int {
	sum := 0
	for _, c := range ts.Counts {
		sum += c
	}
	return sum
}

// CDF is an empirical cumulative distribution over latencies.
type CDF struct {
	sorted []time.Duration
	// total is the population size the fractions are computed against. It
	// may exceed len(sorted): the paper's Fig. 6 plots CDFs that plateau
	// below 1.0 because uncommitted transactions never get a latency.
	total int
}

// NewCDF builds a CDF from observed latencies out of a total population of
// size total (total >= len(lats)). If total is zero, len(lats) is used.
func NewCDF(lats []time.Duration, total int) *CDF {
	c := append([]time.Duration(nil), lats...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	if total < len(c) {
		total = len(c)
	}
	if total == 0 {
		total = 1
	}
	return &CDF{sorted: c, total: total}
}

// At returns the fraction of the population with latency <= d.
func (c *CDF) At(d time.Duration) float64 {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > d })
	return float64(i) / float64(c.total)
}

// Plateau returns the maximum fraction the CDF reaches (the commit ratio).
func (c *CDF) Plateau() float64 {
	return float64(len(c.sorted)) / float64(c.total)
}

// Quantile returns the smallest latency d such that At(d) >= q, or -1 if the
// CDF plateaus below q.
func (c *CDF) Quantile(q float64) time.Duration {
	if q <= 0 {
		return 0
	}
	need := int(math.Ceil(q * float64(c.total)))
	if need > len(c.sorted) {
		return -1
	}
	if need < 1 {
		need = 1
	}
	return c.sorted[need-1]
}

// Points samples the CDF at n evenly spaced latencies in [0, max] and
// returns (latency, fraction) pairs suitable for plotting.
func (c *CDF) Points(n int, max time.Duration) [][2]float64 {
	if n < 2 {
		n = 2
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		d := time.Duration(int64(max) * int64(i) / int64(n-1))
		pts = append(pts, [2]float64{d.Seconds(), c.At(d)})
	}
	return pts
}

// FormatTPS renders a throughput for human-readable tables.
func FormatTPS(tps float64) string {
	switch {
	case tps >= 1000:
		return fmt.Sprintf("%.1fK TPS", tps/1000)
	default:
		return fmt.Sprintf("%.0f TPS", tps)
	}
}
