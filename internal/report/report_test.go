package report

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quick runs an experiment at reduced node scale for unit testing.
var quick = Options{NodeScale: 10, Seed: 1}

func TestStaticTablesRender(t *testing.T) {
	for _, id := range []string{"table2", "table3", "table4"} {
		var buf bytes.Buffer
		if err := Render(&buf, id, nil); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s rendered nothing", id)
		}
	}
	var buf bytes.Buffer
	if err := Render(&buf, "figure9", nil); err == nil {
		t.Fatal("unknown exhibit accepted")
	}
}

func TestTable3ContainsMatrix(t *testing.T) {
	var buf bytes.Buffer
	RenderTable3(&buf)
	out := buf.String()
	for _, want := range []string{"consortium", "c5", "354.0", "404.6", "cape-town"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q", want)
		}
	}
}

func TestTable4RowsMatchPaper(t *testing.T) {
	var buf bytes.Buffer
	RenderTable4(&buf)
	out := buf.String()
	for _, want := range []string{
		"BA*", "Avalanche", "HotStuff", "Clique", "IBFT", "TowerBFT",
		"AVM", "geth", "MoveVM", "eBPF",
		"PyTeal", "Move", "Solidity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 missing %q", want)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	var buf bytes.Buffer
	RenderTable2(&buf)
	out := buf.String()
	for _, want := range []string{"ExchangeContractGafam", "DecentralizedDota", "Counter", "ContractUber", "DecentralizedYoutube", "19100", "38761"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
}

// TestFigure5ShapeQuick verifies the universality outcome at reduced node
// scale: budget-exceeded X's for the hard-budget VMs, geth chains run it,
// Quorum close to the demand.
func TestFigure5ShapeQuick(t *testing.T) {
	o := quick
	o.MaxDuration = 30 * time.Second
	o.Tail = 60 * time.Second
	cells, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	byChain := map[string]Cell{}
	for _, c := range cells {
		byChain[c.Chain] = c
	}
	for _, name := range []string{"algorand", "diem", "solana"} {
		c := byChain[name]
		if c.Commit != 0 || c.Aborted == 0 {
			t.Errorf("%s should fail with budget exceeded: commit=%.2f aborted=%d", name, c.Commit, c.Aborted)
		}
	}
	if byChain["quorum"].Tput < 300 {
		t.Errorf("quorum uber throughput %.0f too low; paper reports 622", byChain["quorum"].Tput)
	}
	for _, name := range []string{"avalanche", "ethereum"} {
		c := byChain[name]
		if c.Aborted > 0 {
			t.Errorf("%s aborted %d: geth must execute the DApp", name, c.Aborted)
		}
		if c.Tput >= 169 {
			t.Errorf("%s uber throughput %.0f, paper reports <169", name, c.Tput)
		}
	}
	var buf bytes.Buffer
	RenderFigure5(&buf, cells)
	if !strings.Contains(buf.String(), "budget exceeded") {
		t.Error("figure 5 rendering missing the budget-exceeded note")
	}
	if !strings.Contains(buf.String(), "X") {
		t.Error("figure 5 rendering missing the X marker")
	}
}

// TestFigure3ShapeQuick checks the scalability ordering at reduced scale:
// Solana sustains high throughput everywhere, Diem leads locally, Ethereum
// and Avalanche stay low regardless of resources.
func TestFigure3ShapeQuick(t *testing.T) {
	o := quick
	o.MaxDuration = 60 * time.Second
	cells, err := Figure3(o)
	if err != nil {
		t.Fatal(err)
	}
	get := func(chain, cfg string) Cell {
		for _, c := range cells {
			if c.Chain == chain && c.Config == cfg {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s", chain, cfg)
		return Cell{}
	}
	for _, cfg := range []string{"datacenter", "testnet", "devnet", "community"} {
		if tput := get("solana", cfg).Tput; tput < 500 {
			t.Errorf("solana on %s: %.0f TPS, want high everywhere", cfg, tput)
		}
		for _, low := range []string{"avalanche", "ethereum"} {
			if tput := get(low, cfg).Tput; tput > 400 {
				t.Errorf("%s on %s: %.0f TPS, should stay low regardless of resources", low, cfg, tput)
			}
		}
	}
	// Diem: among the best locally, low latency.
	dc := get("diem", "datacenter")
	if dc.Tput < 900 || dc.AvgLat > 2*time.Second {
		t.Errorf("diem datacenter: %.0f TPS / %v, paper reports 982+ TPS and <=2s", dc.Tput, dc.AvgLat)
	}
	// Ethereum's throughput must not improve with hardware (throttled by
	// the block period).
	eth := get("ethereum", "datacenter").Tput / (get("ethereum", "community").Tput + 1)
	if eth > 3 {
		t.Errorf("ethereum datacenter/community ratio %.1f: resources should not matter", eth)
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, cells)
	if !strings.Contains(buf.String(), "datacenter") {
		t.Error("figure 3 rendering broken")
	}
}

// TestFigure4ShapeQuick checks the robustness story at reduced scale:
// Quorum collapses, Diem degrades heavily, the probabilistic/eventual
// chains shed load and survive.
func TestFigure4ShapeQuick(t *testing.T) {
	o := quick
	o.MaxDuration = 60 * time.Second
	cells, err := Figure4(o)
	if err != nil {
		t.Fatal(err)
	}
	at := func(chain string, high bool) Cell {
		for _, c := range cells {
			if c.Chain == chain && (c.LoadTPS > 5000) == high {
				return c
			}
		}
		t.Fatalf("missing cell %s", chain)
		return Cell{}
	}
	if !at("quorum", true).Crashed {
		t.Error("quorum must collapse under sustained 10k TPS")
	}
	if at("quorum", false).Crashed {
		t.Error("quorum must survive 1k TPS")
	}
	if ratio := at("diem", false).Tput / (at("diem", true).Tput + 1); ratio < 4 {
		t.Errorf("diem 1k/10k ratio %.1f, paper reports ~10x degradation", ratio)
	}
	for _, name := range []string{"algorand", "solana", "avalanche"} {
		c := at(name, true)
		if c.Crashed {
			t.Errorf("%s crashed at 10k; it should shed load", name)
		}
		if c.Tput < 100 {
			t.Errorf("%s throughput %.0f at 10k; should maintain non-negligible throughput", name, c.Tput)
		}
	}
	// Avalanche's throughput must not decrease under overload (x1.38 in
	// the paper).
	if at("avalanche", true).Tput < at("avalanche", false).Tput {
		t.Error("avalanche throughput should not drop under overload")
	}
	var buf bytes.Buffer
	RenderFigure4(&buf, cells)
	if !strings.Contains(buf.String(), "collapsed") {
		t.Error("figure 4 rendering missing collapse note")
	}
}

// TestFigure6ShapeQuick checks the availability story at reduced scale:
// Quorum commits everything quickly; bounded chains plateau on the Apple
// burst; everyone commits nearly all of the Google burst.
func TestFigure6ShapeQuick(t *testing.T) {
	o := quick
	o.MaxDuration = 60 * time.Second
	o.Tail = 180 * time.Second
	cells, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(chain, stock string) Cell {
		c, err := FindCell(cells, chain, "nasdaq-"+stock)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, stock := range []string{"google", "microsoft", "apple"} {
		if c := cell("quorum", stock); c.Commit < 0.99 {
			t.Errorf("quorum commits %.1f%% of %s; paper reports all three in full", c.Commit*100, stock)
		}
	}
	for _, name := range []string{"algorand", "solana"} {
		if c := cell(name, "apple"); c.Commit > 0.95 {
			t.Errorf("%s commits %.1f%% of apple; a plateau below 100%% is expected", name, c.Commit*100)
		}
	}
	// Diem's plateau is pool-capacity bound and softer at reduced node
	// scale; it still must not commit everything.
	if c := cell("diem", "apple"); c.Commit > 0.995 {
		t.Errorf("diem commits %.1f%% of apple; a plateau below 100%% is expected", c.Commit*100)
	}
	for _, name := range []string{"algorand", "solana", "diem"} {
		if c := cell(name, "google"); c.Commit < 0.9 {
			t.Errorf("%s commits %.1f%% of google; paper reports >97%%", name, c.Commit*100)
		}
	}
	// Ethereum is the laggard on google.
	if g := cell("ethereum", "google"); g.AvgLat < cell("quorum", "google").AvgLat {
		t.Error("ethereum should be slower than quorum on the google burst")
	}
	var buf bytes.Buffer
	RenderFigure6(&buf, cells)
	if !strings.Contains(buf.String(), "apple") {
		t.Error("figure 6 rendering broken")
	}
	var csv bytes.Buffer
	WriteCDFCSV(&csv, cells)
	if !strings.Contains(csv.String(), "workload,chain,latency_s,fraction") {
		t.Error("CDF CSV header missing")
	}
}

// TestFigure2ShapeQuick checks the headline DApp grid at reduced rate and
// node scale: YouTube commits <1% everywhere (and cannot deploy on
// Algorand), Quorum leads on FIFA and Uber, the hard-budget VMs X out on
// Uber.
func TestFigure2ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 2 grid takes ~1 min")
	}
	o := quick
	o.MaxDuration = 60 * time.Second
	o.Tail = 60 * time.Second
	cells, err := Figure2(o)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(chain, dapp string) Cell {
		c, err := FindCell(cells, chain, dapp)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// YouTube: <1% commits everywhere; Algorand cannot express it at all.
	if c := cell("algorand", "youtube"); c.DeployErr == "" {
		t.Error("youtube must fail to deploy on algorand")
	}
	for _, name := range []string{"avalanche", "diem", "ethereum", "quorum", "solana"} {
		if c := cell(name, "youtube"); c.Commit > 0.02 {
			t.Errorf("%s commits %.2f%% of youtube; paper reports <1%%", name, c.Commit*100)
		}
	}
	// FIFA: only Quorum exceeds 622 TPS... at reduced rate, assert the
	// dominance ordering instead of absolutes.
	q := cell("quorum", "fifa98").Tput
	for _, name := range []string{"algorand", "avalanche", "diem", "ethereum", "solana"} {
		if o := cell(name, "fifa98").Tput; o >= q {
			t.Errorf("%s fifa throughput %.0f >= quorum %.0f; quorum must lead", name, o, q)
		}
	}
	// Dota: nobody sustains the demand.
	for _, name := range []string{"algorand", "avalanche", "diem", "ethereum", "quorum", "solana"} {
		if c := cell(name, "dota2"); c.Commit > 0.5 {
			t.Errorf("%s commits %.0f%% of dota2; nobody should sustain it", name, c.Commit*100)
		}
	}
	var buf bytes.Buffer
	RenderFigure2(&buf, cells)
	for _, want := range []string{"exchange", "youtube", "X"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("figure 2 rendering missing %q", want)
		}
	}
	var csv bytes.Buffer
	WriteCellsCSV(&csv, cells)
	if !strings.Contains(csv.String(), "chain,config,workload") {
		t.Error("cells CSV header missing")
	}
}

// TestTable1Quick regenerates the claimed-vs-observed comparison.
func TestTable1Quick(t *testing.T) {
	o := quick
	o.MaxDuration = 30 * time.Second
	o.Tail = 60 * time.Second
	cells, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Table1Claims) {
		t.Fatalf("cells = %d", len(cells))
	}
	// The observed numbers must stay far below the claims (the paper's
	// point): Solana nowhere near 200K, Avalanche nowhere near 4.5K.
	for _, c := range cells {
		if c.Chain == "solana" && c.Tput > 20000 {
			t.Errorf("solana observed %.0f TPS: implausibly near claims", c.Tput)
		}
		if c.Chain == "avalanche" && c.Tput > 1000 {
			t.Errorf("avalanche observed %.0f TPS: implausibly near claims", c.Tput)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, cells)
	if !strings.Contains(buf.String(), "200K TPS") {
		t.Error("table 1 rendering missing claims")
	}
}

// TestExtensionsShapeQuick runs the extension study at reduced scale:
// IBFT collapses under sustained overload, Raft and the leaderless DBFT
// do not, and the leaderless design retains the highest throughput.
func TestExtensionsShapeQuick(t *testing.T) {
	o := quick
	o.MaxDuration = 60 * time.Second
	cells, err := Extensions(o)
	if err != nil {
		t.Fatal(err)
	}
	at := func(chain string, high bool) Cell {
		for _, c := range cells {
			if c.Chain == chain && (c.LoadTPS > 5000) == high {
				return c
			}
		}
		t.Fatalf("missing cell %s", chain)
		return Cell{}
	}
	if !at("quorum", true).Crashed {
		t.Error("quorum should collapse in the extension study")
	}
	if at("redbelly", true).Crashed {
		t.Error("redbelly should not collapse")
	}
	if at("redbelly", true).Tput < 5*at("quorum", true).Tput {
		t.Errorf("redbelly %.0f vs quorum %.0f at 10k: leaderless should dominate",
			at("redbelly", true).Tput, at("quorum", true).Tput)
	}
	var buf bytes.Buffer
	RenderExtensions(&buf, cells)
	if !strings.Contains(buf.String(), "redbelly") {
		t.Error("extension rendering broken")
	}
}
