package report

import (
	"fmt"
	"io"

	"diablo/internal/span"
)

// RenderSpans prints the span digest: aggregate critical-path attribution
// over committed transactions and blocks, the slowest transaction's full
// path, and the hottest parallel-execution conflict keys.
func RenderSpans(w io.Writer, a *span.Analysis) {
	fmt.Fprintf(w, "spans: %s seed %d — %d spans, %d committed txs, %d blocks\n",
		a.Chain, a.Seed, a.Spans, a.Txs, a.Blocks)

	renderShares(w, "critical path, committed transactions (hops sum to commit latency)", a.TxShares)
	renderShares(w, "critical path, block intervals", a.BlkShares)

	if s := a.Slowest; s != nil {
		fmt.Fprintf(w, "\nslowest tx %s: %s (submitted %.2fs, committed %.2fs)\n",
			s.Tx, fmtDur(s.Latency), s.Submit.Seconds(), s.Commit.Seconds())
		renderPath(w, s.Path)
	}

	if len(a.Conflicts) > 0 {
		fmt.Fprintf(w, "\nhot conflict keys (parallel-execution fallback attribution):\n")
		top := a.Conflicts
		if len(top) > 10 {
			top = top[:10]
		}
		for _, c := range top {
			fmt.Fprintf(w, "  %8d  %s\n", c.Count, c.Key)
		}
		if len(a.Conflicts) > len(top) {
			fmt.Fprintf(w, "  ... %d more keys\n", len(a.Conflicts)-len(top))
		}
	}
}

// renderShares prints one aggregate attribution table (skipped when empty).
func renderShares(w io.Writer, title string, shares []span.SubsystemShare) {
	if len(shares) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%s:\n", title)
	fmt.Fprintf(w, "  %-10s %12s %7s\n", "subsystem", "total", "share")
	for _, s := range shares {
		fmt.Fprintf(w, "  %-10s %12s %6.1f%%\n", s.Subsystem, fmtDur(s.Dur), s.Frac*100)
	}
}

// renderPath prints one critical path leaf-first, one hop per line.
func renderPath(w io.Writer, path []span.Contribution) {
	for _, c := range path {
		fmt.Fprintf(w, "    %10s  %-10s %s (node %d)\n", fmtDur(c.Dur), c.Subsystem, c.Label, c.Node)
	}
}

// RenderTxPaths prints every committed transaction's full critical path,
// in submission order.
func RenderTxPaths(w io.Writer, f *span.File) {
	paths := f.TxPaths()
	fmt.Fprintf(w, "%d committed transactions\n", len(paths))
	for i := range paths {
		p := &paths[i]
		fmt.Fprintf(w, "\ntx %s: %s (submitted %.2fs, committed %.2fs)\n",
			p.Tx, fmtDur(p.Latency), p.Submit.Seconds(), p.Commit.Seconds())
		renderPath(w, p.Path)
	}
}
