package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"diablo/internal/chains"
	"diablo/internal/collect"
	"diablo/internal/configs"
	"diablo/internal/simnet"
	"diablo/internal/workloads"
)

// Text renderers: each table/figure prints in the layout of the paper's
// corresponding exhibit; CSV writers emit machine-readable series.

func fmtLat(d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f s", d.Seconds())
}

func fmtTput(c Cell) string {
	if c.DeployErr != "" || (c.Aborted > 0 && c.Commit == 0) {
		return "X" // the paper's cross: the chain cannot run the DApp
	}
	return fmt.Sprintf("%.0f", c.Tput)
}

// RenderRecovery prints a chaos run's recovery metrics: the liveness gap,
// per-phase throughput/latency, and time-to-recover after each fault
// clears (a "never" marks a silent hang).
func RenderRecovery(w io.Writer, rec *collect.Recovery) {
	if rec == nil {
		return
	}
	fmt.Fprintf(w, "liveness gap: %.1f s (starting at %.1f s)\n",
		rec.LivenessGapS, rec.LivenessGapStartS)
	if len(rec.Phases) > 0 {
		fmt.Fprintf(w, "%-11s %9s %9s %10s %12s %12s\n",
			"phase", "start", "end", "committed", "tput (TPS)", "avg lat")
		for _, p := range rec.Phases {
			lat := "-"
			if p.Committed > 0 {
				lat = fmt.Sprintf("%.1f s", p.AvgLatencyS)
			}
			fmt.Fprintf(w, "%-11s %8.1fs %8.1fs %10d %12.1f %12s\n",
				p.Name, p.StartS, p.EndS, p.Committed, p.ThroughputTPS, lat)
		}
	}
	for _, r := range rec.Recoveries {
		resume := "never (silent hang)"
		switch {
		case r.RecoverS >= 0:
			resume = fmt.Sprintf("commits resumed %.1f s later", r.RecoverS)
		case r.Idle:
			resume = "nothing in flight (workload drained)"
		}
		fmt.Fprintf(w, "recovery: %s cleared at %.1f s — %s\n", r.Fault, r.ClearS, resume)
	}
}

// RenderInvariants prints the invariant monitors' verdict: the checked
// set and every violation with its virtual time, height and nodes.
func RenderInvariants(w io.Writer, inv *collect.InvariantReport) {
	if inv == nil {
		return
	}
	if len(inv.Violations) == 0 {
		fmt.Fprintf(w, "invariants: %s — all hold\n", strings.Join(inv.Checked, ", "))
		return
	}
	fmt.Fprintf(w, "invariants: %s — %d violation(s)\n",
		strings.Join(inv.Checked, ", "), len(inv.Violations))
	for _, v := range inv.Violations {
		fmt.Fprintf(w, "  %s at %.3f s", v.Invariant, v.VTimeS)
		if v.Height > 0 {
			fmt.Fprintf(w, " height %d", v.Height)
		}
		if len(v.Nodes) > 0 {
			nums := make([]string, len(v.Nodes))
			for i, n := range v.Nodes {
				nums[i] = fmt.Sprint(n)
			}
			fmt.Fprintf(w, " nodes %s", strings.Join(nums, ","))
		}
		if v.Tx != "" {
			fmt.Fprintf(w, " tx %s", v.Tx)
		}
		fmt.Fprintf(w, ": %s\n", v.Detail)
	}
}

// RenderAdversary prints the Byzantine engine's counters for a run that
// carried a scripted adversary.
func RenderAdversary(w io.Writer, adv *collect.AdversarySummary) {
	if adv == nil {
		return
	}
	fmt.Fprintf(w, "adversary: %d windows; equivocations %d (defended %d), votes withheld %d, "+
		"corrupted %d (discarded %d), censored %d, replayed %d\n",
		adv.Windows, adv.Equivocations, adv.Defended, adv.Withheld,
		adv.Corrupted, adv.Discarded, adv.Censored, adv.Replayed)
}

// WriteCellsCSV emits the raw cells.
func WriteCellsCSV(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "chain,config,workload,load_tps,throughput_tps,avg_latency_s,commit_ratio,dropped,aborted,crashed,deploy_err")
	for _, c := range cells {
		fmt.Fprintf(w, "%s,%s,%s,%.1f,%.1f,%.2f,%.4f,%d,%d,%v,%q\n",
			c.Chain, c.Config, c.Workload, c.LoadTPS, c.Tput,
			c.AvgLat.Seconds(), c.Commit, c.Dropped, c.Aborted, c.Crashed, c.DeployErr)
	}
}

// grid renders rows=chains, cols=workloads with a value function.
func grid(w io.Writer, cells []Cell, cols []string, colOf func(Cell) string, val func(Cell) string) {
	fmt.Fprintf(w, "%-11s", "")
	for _, col := range cols {
		fmt.Fprintf(w, "%14s", col)
	}
	fmt.Fprintln(w)
	for _, name := range chains.Names() {
		fmt.Fprintf(w, "%-11s", name)
		for _, col := range cols {
			v := ""
			for _, c := range cells {
				if c.Chain == name && colOf(c) == col {
					v = val(c)
					break
				}
			}
			fmt.Fprintf(w, "%14s", v)
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure2 prints the three Figure 2 rows: average throughput,
// average latency and proportion of committed transactions per
// (chain, DApp) pair.
func RenderFigure2(w io.Writer, cells []Cell) {
	loads := map[string]float64{}
	for _, c := range cells {
		loads[c.Workload] = c.LoadTPS
	}
	fmt.Fprintln(w, "Figure 2 — realistic DApps on the consortium configuration")
	fmt.Fprint(w, "average submitted workload (TPS):")
	for _, d := range DAppNames {
		fmt.Fprintf(w, "  %s=%.0f", d, loads[d])
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "\naverage throughput (TPS; X = cannot run the DApp):")
	grid(w, cells, DAppNames, func(c Cell) string { return c.Workload }, fmtTput)
	fmt.Fprintln(w, "\naverage latency:")
	grid(w, cells, DAppNames, func(c Cell) string { return c.Workload }, func(c Cell) string { return fmtLat(c.AvgLat) })
	fmt.Fprintln(w, "\nproportion of committed transactions:")
	grid(w, cells, DAppNames, func(c Cell) string { return c.Workload }, func(c Cell) string {
		return fmt.Sprintf("%.1f%%", c.Commit*100)
	})
}

// RenderFigure3 prints throughput and latency per configuration.
func RenderFigure3(w io.Writer, cells []Cell) {
	cols := make([]string, 0, len(Figure3Configs))
	for _, cfg := range Figure3Configs {
		cols = append(cols, cfg.Name)
	}
	fmt.Fprintln(w, "Figure 3 — constant 1,000 TPS native transfers per configuration")
	fmt.Fprintln(w, "\naverage throughput (TPS):")
	grid(w, cells, cols, func(c Cell) string { return c.Config }, fmtTput)
	fmt.Fprintln(w, "\naverage latency:")
	grid(w, cells, cols, func(c Cell) string { return c.Config }, func(c Cell) string { return fmtLat(c.AvgLat) })
}

// RenderFigure4 prints the 1k vs 10k robustness comparison.
func RenderFigure4(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Figure 4 — robustness: 1,000 vs 10,000 TPS in each chain's best configuration")
	fmt.Fprintf(w, "%-11s %-11s %15s %15s %12s %12s %s\n",
		"chain", "config", "tput@1k (TPS)", "tput@10k (TPS)", "lat@1k", "lat@10k", "note")
	for _, name := range chains.Names() {
		var at1k, at10k Cell
		for _, c := range cells {
			if c.Chain != name {
				continue
			}
			if c.LoadTPS < 5000 {
				at1k = c
			} else {
				at10k = c
			}
		}
		note := ""
		if at10k.Crashed {
			note = "collapsed (resource exhaustion)"
		}
		fmt.Fprintf(w, "%-11s %-11s %15.0f %15.0f %12s %12s %s\n",
			name, at1k.Config, at1k.Tput, at10k.Tput, fmtLat(at1k.AvgLat), fmtLat(at10k.AvgLat), note)
	}
}

// RenderFigure5 prints the mobility-service universality result.
func RenderFigure5(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Figure 5 — compute-intensive mobility-service DApp (Uber workload, consortium)")
	fmt.Fprintf(w, "%-11s %12s %10s %10s %s\n", "chain", "tput (TPS)", "latency", "commit", "error")
	for _, name := range chains.Names() {
		for _, c := range cells {
			if c.Chain != name {
				continue
			}
			errNote := ""
			if c.Aborted > 0 && c.Commit == 0 {
				errNote = "budget exceeded"
			}
			if c.DeployErr != "" {
				errNote = "cannot deploy"
			}
			fmt.Fprintf(w, "%-11s %12s %10s %9.1f%% %s\n",
				name, fmtTput(c), fmtLat(c.AvgLat), c.Commit*100, errNote)
		}
	}
}

// RenderFigure6 prints latency CDF summaries per burst workload.
func RenderFigure6(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Figure 6 — latency CDFs under NASDAQ bursts (consortium)")
	for _, stock := range Figure6Stocks {
		fmt.Fprintf(w, "\n%s burst:\n", stock)
		fmt.Fprintf(w, "%-11s %9s %9s %9s %9s %10s\n", "chain", "commit", "p50", "p90", "<=8s", "max")
		for _, name := range chains.Names() {
			c, err := FindCell(filterWorkload(cells, "nasdaq-"+stock), name, "nasdaq-"+stock)
			if err != nil {
				continue
			}
			cdf := CDFOf(c)
			p50 := cdf.Quantile(0.5)
			p90 := cdf.Quantile(0.9)
			maxLat := time.Duration(0)
			if len(c.Latencies) > 0 {
				sorted := append([]time.Duration(nil), c.Latencies...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				maxLat = sorted[len(sorted)-1]
			}
			fmt.Fprintf(w, "%-11s %8.1f%% %9s %9s %8.1f%% %10s\n",
				name, cdf.Plateau()*100, quantileStr(p50), quantileStr(p90),
				cdf.At(8*time.Second)*100, fmtLat(maxLat))
		}
	}
}

func quantileStr(d time.Duration) string {
	if d < 0 {
		return "never"
	}
	return fmtLat(d)
}

func filterWorkload(cells []Cell, workload string) []Cell {
	var out []Cell
	for _, c := range cells {
		if c.Workload == workload {
			out = append(out, c)
		}
	}
	return out
}

// WriteCDFCSV emits (chain, latency_s, fraction) points for plotting the
// Fig. 6 curves.
func WriteCDFCSV(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "workload,chain,latency_s,fraction")
	for _, c := range cells {
		cdf := CDFOf(c)
		for _, pt := range cdf.Points(200, 180*time.Second) {
			fmt.Fprintf(w, "%s,%s,%.2f,%.4f\n", c.Workload, c.Chain, pt[0], pt[1])
		}
	}
}

// RenderTable1 prints the claimed-vs-observed comparison.
func RenderTable1(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Table 1 — claimed vs observed performance")
	fmt.Fprintf(w, "%-11s %14s %12s | %14s %12s %s\n",
		"blockchain", "claimed tput", "claimed lat", "observed tput", "observed lat", "setup")
	for i, claim := range Table1Claims {
		if i >= len(cells) {
			break
		}
		c := cells[i]
		fmt.Fprintf(w, "%-11s %14s %12s | %11.0f TPS %12s %s\n",
			claim.Chain, claim.ClaimedTPS, claim.ClaimedLat, c.Tput, fmtLat(c.AvgLat), c.Config)
	}
}

// RenderTable2 prints the DApp suite and trace shapes.
func RenderTable2(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — the DApp suite and its workload traces")
	fmt.Fprintf(w, "%-10s %-24s %-14s %10s %10s %10s\n",
		"dapp", "contract", "trace", "peak TPS", "avg TPS", "duration")
	rows := []struct {
		dapp, contract string
		trace          *workloads.Trace
	}{
		{"exchange", "ExchangeContractGafam", workloads.GAFAM()},
		{"dota", "DecentralizedDota", workloads.Dota2()},
		{"fifa", "Counter", workloads.FIFA()},
		{"uber", "ContractUber", workloads.Uber()},
		{"youtube", "DecentralizedYoutube", workloads.YouTube()},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-24s %-14s %10.0f %10.0f %9.0fs\n",
			r.dapp, r.contract, r.trace.Name, r.trace.Peak(), r.trace.Average(),
			r.trace.Duration().Seconds())
	}
}

// RenderTable3 prints the deployment configurations and the network
// matrix.
func RenderTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3 — deployment configurations")
	fmt.Fprintf(w, "%-12s %6s %7s %8s %-12s %s\n", "config", "nodes", "vCPUs", "memory", "instance", "regions")
	for _, cfg := range configs.All() {
		regions := "all ten"
		if len(cfg.Regions) == 1 {
			regions = cfg.Regions[0].String()
		}
		fmt.Fprintf(w, "%-12s %6d %7d %5d GiB %-12s %s\n", cfg.Name, cfg.Nodes, cfg.VCPUs, cfg.MemoryGiB, cfg.Instance, regions)
	}
	fmt.Fprintln(w, "\ninter-region RTT (ms, lower-left) / bandwidth (Mbps, upper-right):")
	regions := simnet.AllRegions()
	fmt.Fprintf(w, "%-11s", "")
	for _, r := range regions {
		fmt.Fprintf(w, "%10s", shortRegion(r))
	}
	fmt.Fprintln(w)
	for i, a := range regions {
		fmt.Fprintf(w, "%-11s", shortRegion(a))
		for j, b := range regions {
			switch {
			case i == j:
				fmt.Fprintf(w, "%10s", "-")
			case j > i:
				fmt.Fprintf(w, "%10.1f", simnet.Bandwidth(a, b))
			default:
				fmt.Fprintf(w, "%10.1f", simnet.RTT(a, b))
			}
		}
		fmt.Fprintln(w)
	}
}

func shortRegion(r simnet.Region) string {
	s := r.String()
	if len(s) > 9 {
		return s[:9]
	}
	return s
}

// RenderTable4 prints the evaluated blockchains' characteristics.
func RenderTable4(w io.Writer) {
	fmt.Fprintln(w, "Table 4 — blockchains evaluated in DIABLO")
	fmt.Fprintf(w, "%-11s %-9s %-10s %-8s %s\n", "blockchain", "prop.", "consensus", "VM", "DApp lang.")
	for _, name := range chains.Names() {
		p := chains.MustParams(name)
		fmt.Fprintf(w, "%-11s %-9s %-10s %-8s %s\n", p.Name, p.Guarantee, p.Consensus, p.VM, p.Lang)
	}
}

// RenderExtensions prints the extension study.
func RenderExtensions(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Extension study — IBFT vs Raft vs leaderless DBFT under overload (community)")
	fmt.Fprintf(w, "%-12s %15s %15s %12s %12s %s\n",
		"chain", "tput@1k (TPS)", "tput@10k (TPS)", "lat@1k", "lat@10k", "note")
	for _, name := range ExtensionChains {
		var at1k, at10k Cell
		for _, c := range cells {
			if c.Chain != name {
				continue
			}
			if c.LoadTPS < 5000 {
				at1k = c
			} else {
				at10k = c
			}
		}
		note := ""
		if at10k.Crashed {
			note = "collapsed (resource exhaustion)"
		}
		fmt.Fprintf(w, "%-12s %15.0f %15.0f %12s %12s %s\n",
			name, at1k.Tput, at10k.Tput, fmtLat(at1k.AvgLat), fmtLat(at10k.AvgLat), note)
	}
	fmt.Fprintln(w, "\nquorum-raft swaps the consensus but keeps the never-drop mempool — and")
	fmt.Fprintln(w, "still collapses: the paper's §6.3 collapse is a mempool-design property.")
	fmt.Fprintln(w, "redbelly bounds its pool and has no leader to saturate; it sheds load")
	fmt.Fprintln(w, "and keeps committing, as the paper reports for Smart Red Belly.")
}

// Render dispatches a named exhibit to its renderer (tables that need no
// experiment run take nil cells).
func Render(w io.Writer, id string, cells []Cell) error {
	switch strings.ToLower(id) {
	case "table1":
		RenderTable1(w, cells)
	case "table2":
		RenderTable2(w)
	case "table3":
		RenderTable3(w)
	case "table4":
		RenderTable4(w)
	case "figure2":
		RenderFigure2(w, cells)
	case "figure3":
		RenderFigure3(w, cells)
	case "figure4":
		RenderFigure4(w, cells)
	case "figure5":
		RenderFigure5(w, cells)
	case "figure6":
		RenderFigure6(w, cells)
	case "extensions":
		RenderExtensions(w, cells)
	case "robustness":
		RenderRobustness(w, cells)
	default:
		return fmt.Errorf("report: unknown exhibit %q", id)
	}
	return nil
}

// Experiments maps exhibit ids to their experiment runners; exhibits that
// are static (tables 2-4) map to nil.
var Experiments = map[string]func(Options) ([]Cell, error){
	"table1":  Table1,
	"table2":  nil,
	"table3":  nil,
	"table4":  nil,
	"figure2": Figure2,
	"figure3": Figure3,
	"figure4": Figure4,
	"figure5": Figure5,
	"figure6": Figure6,
	// extensions and robustness are this repository's beyond-the-paper
	// studies.
	"extensions": Extensions,
	"robustness": Robustness,
}

// IDs lists the exhibits in presentation order (the paper's nine plus the
// extension study).
func IDs() []string {
	return []string{"table1", "table2", "table3", "table4", "figure2", "figure3", "figure4", "figure5", "figure6", "extensions", "robustness"}
}
