package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"diablo/internal/obs"
)

// RenderTrace prints the "where time goes" view of a parsed trace: the
// run's shape, the latency attribution table over the committed
// transactions, the chaos fault timeline, and the per-second metric
// timelines next to the submission/commit series.
func RenderTrace(w io.Writer, tr *obs.Trace, att *obs.Attribution) {
	fmt.Fprintf(w, "trace: %s seed %d — %d events, %d txs (%d committed, %d rejected, %d timed out, %d pending, %d retries), %d blocks, %d fault transitions\n",
		tr.Chain, tr.Seed, tr.Events, tr.Submitted, tr.Committed, tr.Rejected,
		tr.TimedOut, tr.Pending, tr.Retries, len(tr.Blocks), len(tr.Faults))

	if att != nil && att.Committed > 0 {
		fmt.Fprintf(w, "\nwhere time goes (%d committed txs):\n", att.Committed)
		fmt.Fprintf(w, "  %-10s %10s %10s %10s %7s\n", "component", "median", "p95", "mean", "share")
		for _, c := range att.Components {
			fmt.Fprintf(w, "  %-10s %10s %10s %10s %6.1f%%\n",
				c.Name, fmtDur(c.Median), fmtDur(c.P95), fmtDur(c.Mean), c.Share*100)
		}
		t := att.Total
		fmt.Fprintf(w, "  %-10s %10s %10s %10s %6.1f%%\n",
			t.Name, fmtDur(t.Median), fmtDur(t.P95), fmtDur(t.Mean), t.Share*100)
		fmt.Fprintf(w, "  unattributed residual: %.2f%% mean, %.2f%% max of per-tx latency\n",
			att.MeanResidualShare*100, att.MaxResidualShare*100)
	}

	if p := tr.Pexec; p != nil {
		fmt.Fprintf(w, "\nparallel execution (%d blocks): %d speculative commits, %d fallbacks, %d hazard edges\n",
			p.Blocks, p.Spec, p.Fallbacks, p.Edges)
	}

	if len(tr.Faults) > 0 {
		fmt.Fprintf(w, "\nfaults:\n")
		for _, f := range tr.Faults {
			fmt.Fprintf(w, "  %7.1fs  %-5s  %s\n", f.At.Seconds(), f.Phase, f.Note)
		}
	}

	renderTimeline(w, tr)
}

// fmtDur renders a duration compactly with stable units.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d == 0:
		return "0"
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// renderTimeline prints the per-second submitted/committed series derived
// from the spans alongside the sampled metric columns.
func renderTimeline(w io.Writer, tr *obs.Trace) {
	// Per-second submission/commit counts from the spans.
	var maxT time.Duration
	for _, id := range tr.Order {
		s := tr.Spans[id]
		if s.Submit > maxT {
			maxT = s.Submit
		}
		if s.Commit > maxT {
			maxT = s.Commit
		}
	}
	for _, s := range tr.Samples {
		if s.At > maxT {
			maxT = s.At
		}
	}
	secs := int(maxT/time.Second) + 1
	if maxT == 0 || secs <= 0 {
		return
	}
	submitted := make([]int, secs)
	committed := make([]int, secs)
	for _, id := range tr.Order {
		s := tr.Spans[id]
		if s.Submit >= 0 && int(s.Submit/time.Second) < secs {
			submitted[s.Submit/time.Second]++
		}
		if s.Commit >= 0 && int(s.Commit/time.Second) < secs {
			committed[s.Commit/time.Second]++
		}
	}

	// Samples indexed by second (the registry samples once per second).
	sampleAt := make(map[int][]float64, len(tr.Samples))
	for _, s := range tr.Samples {
		sampleAt[int(s.At/time.Second)] = s.Vals
	}

	fmt.Fprintf(w, "\nper-second timeline:\n")
	cols := tr.MetricNames
	header := []string{"t(s)", "submit", "commit"}
	header = append(header, cols...)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
		if widths[i] < 6 {
			widths[i] = 6
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.Reset()
		b.WriteString(" ")
		for i, c := range cells {
			fmt.Fprintf(&b, " %*s", widths[i], c)
		}
		fmt.Fprintln(w, b.String())
	}
	writeRow(header)
	var prevVals []float64
	skipped := false
	for sec := 0; sec < secs; sec++ {
		vals, sampled := sampleAt[sec]
		// Skip fully idle seconds, and runs of idle-but-sampled seconds
		// whose metrics repeat the previous printed row exactly.
		idle := submitted[sec] == 0 && committed[sec] == 0
		if idle && (!sampled || floatsEqual(vals, prevVals)) {
			skipped = true
			continue
		}
		if skipped {
			writeRow([]string{"..."})
			skipped = false
		}
		if sampled {
			prevVals = vals
		}
		cells := []string{
			fmt.Sprintf("%d", sec),
			fmt.Sprintf("%d", submitted[sec]),
			fmt.Sprintf("%d", committed[sec]),
		}
		for i := range cols {
			if sampled && i < len(vals) {
				cells = append(cells, fmtVal(vals[i]))
			} else {
				cells = append(cells, "-")
			}
		}
		writeRow(cells)
	}
}

// floatsEqual reports element-wise equality of two sample rows.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fmtVal renders a sampled metric value without trailing noise.
func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
