// Package report regenerates every table and figure of the paper's
// evaluation: it runs the experiments through internal/bench and renders
// the results as text tables and CSV series. Each ExperimentID matches a
// table or figure number; cmd/diablo-exp exposes them on the command line
// and the repository's bench_test.go wraps them as Go benchmarks.
package report

import (
	"fmt"
	"time"

	"diablo/internal/bench"
	"diablo/internal/chains"
	"diablo/internal/configs"
	"diablo/internal/stats"
	"diablo/internal/workloads"
)

// Options tunes experiment scale so the full suite can also run quickly on
// a laptop; zero values mean the paper's full scale.
type Options struct {
	// NodeScale divides node counts (e.g. 10 runs the consortium with 20
	// nodes instead of 200).
	NodeScale int
	// RateScale multiplies workload rates (e.g. 0.1 sends a tenth).
	RateScale float64
	// MaxDuration truncates traces (0 = full length).
	MaxDuration time.Duration
	// Seed defaults to 1.
	Seed int64
	// Tail defaults to 120s.
	Tail time.Duration
	// Workers bounds how many experiment cells run concurrently: <= 0 uses
	// GOMAXPROCS, 1 forces a serial sweep. Cells are isolated (own
	// scheduler, own RNGs), so results are identical for any worker count.
	Workers int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) traces(ts []*workloads.Trace) []*workloads.Trace {
	out := ts
	if o.RateScale > 0 && o.RateScale != 1 {
		out = bench.Scale(out, o.RateScale)
	}
	if o.MaxDuration > 0 {
		tr := make([]*workloads.Trace, len(out))
		for i, t := range out {
			tr[i] = t.Truncated(o.MaxDuration)
		}
		out = tr
	}
	return out
}

func (o Options) run(chainName string, cfg *configs.Config, traces []*workloads.Trace) (*bench.Outcome, error) {
	return bench.Run(bench.Experiment{
		Chain:      chainName,
		Config:     cfg,
		Traces:     o.traces(traces),
		Seed:       o.seed(),
		Tail:       o.Tail,
		ScaleNodes: o.NodeScale,
	})
}

// Cell is one (chain x workload x config) measurement.
type Cell struct {
	Chain     string
	Config    string
	Workload  string
	LoadTPS   float64
	Tput      float64
	AvgLat    time.Duration
	Commit    float64 // fraction committed
	Dropped   int
	Aborted   int
	Crashed   bool
	DeployErr string
	Latencies []time.Duration
	Submitted int
	// Violations lists invariant breaches detected while the run's
	// monitors were armed (empty unless the exhibit arms them, as the
	// robustness grid does).
	Violations []string
}

func cellOf(out *bench.Outcome, cfg, workload string) Cell {
	c := Cell{
		Chain:     out.Result.Chain,
		Config:    cfg,
		Workload:  workload,
		LoadTPS:   out.Summary.AvgLoadTPS,
		Tput:      out.Summary.ThroughputTPS,
		AvgLat:    out.Summary.AvgLatency,
		Commit:    out.Summary.CommitRatio,
		Dropped:   out.Dropped,
		Aborted:   out.AbortedExec,
		Crashed:   out.Crashed,
		Latencies: out.Latencies,
		Submitted: out.Summary.Submitted,
	}
	if out.DeployErr != nil {
		c.DeployErr = out.DeployErr.Error()
	}
	for _, v := range out.Violations {
		c.Violations = append(c.Violations, fmt.Sprintf("%s@%.0fs", v.Invariant, v.VTime.Seconds()))
	}
	return c
}

// DAppNames are the Figure 2 columns in the paper's order.
var DAppNames = []string{"exchange", "dota2", "fifa98", "uber-nyc", "youtube"}

// Figure2 evaluates all six chains against the five realistic DApps on the
// consortium configuration.
func Figure2(o Options) ([]Cell, error) {
	type job struct {
		dapp   string
		chain  string
		traces []*workloads.Trace
	}
	var jobs []job
	for _, dapp := range DAppNames {
		traces, err := bench.TracesFor(dapp)
		if err != nil {
			return nil, err
		}
		for _, name := range chains.Names() {
			jobs = append(jobs, job{dapp: dapp, chain: name, traces: traces})
		}
	}
	return o.runCells(len(jobs), func(i int) (Cell, error) {
		j := jobs[i]
		out, err := o.run(j.chain, configs.Consortium, j.traces)
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, "consortium", j.dapp), nil
	})
}

// Figure3Configs are the four scalability configurations (consortium is
// covered by Figure 2).
var Figure3Configs = []*configs.Config{
	configs.Datacenter, configs.Testnet, configs.Devnet, configs.Community,
}

// Figure3 runs the 1,000 TPS constant native workload on the four
// deployment configurations.
func Figure3(o Options) ([]Cell, error) {
	type job struct {
		cfg   *configs.Config
		chain string
	}
	var jobs []job
	for _, cfg := range Figure3Configs {
		for _, name := range chains.Names() {
			jobs = append(jobs, job{cfg: cfg, chain: name})
		}
	}
	return o.runCells(len(jobs), func(i int) (Cell, error) {
		j := jobs[i]
		tr := workloads.NativeConstant(1000, 120*time.Second)
		out, err := o.run(j.chain, j.cfg, []*workloads.Trace{tr})
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, j.cfg.Name, tr.Name), nil
	})
}

// BestConfig is the configuration each chain performed best in under the
// 1,000 TPS deployment challenge (§6.3 deploys the robustness test there).
var BestConfig = map[string]*configs.Config{
	"algorand":  configs.Testnet,
	"avalanche": configs.Datacenter,
	"diem":      configs.Testnet,
	"ethereum":  configs.Datacenter,
	"quorum":    configs.Community,
	"solana":    configs.Datacenter,
}

// Figure4 stresses each chain with 1,000 and 10,000 TPS in its best
// configuration.
func Figure4(o Options) ([]Cell, error) {
	type job struct {
		chain string
		tps   float64
	}
	var jobs []job
	for _, name := range chains.Names() {
		for _, tps := range []float64{1000, 10000} {
			jobs = append(jobs, job{chain: name, tps: tps})
		}
	}
	return o.runCells(len(jobs), func(i int) (Cell, error) {
		j := jobs[i]
		tr := workloads.NativeConstant(j.tps, 120*time.Second)
		out, err := o.run(j.chain, BestConfig[j.chain], []*workloads.Trace{tr})
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, BestConfig[j.chain].Name, tr.Name), nil
	})
}

// Figure5 runs the compute-intensive mobility-service DApp on the
// consortium configuration.
func Figure5(o Options) ([]Cell, error) {
	names := chains.Names()
	return o.runCells(len(names), func(i int) (Cell, error) {
		out, err := o.run(names[i], configs.Consortium, []*workloads.Trace{workloads.Uber()})
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, "consortium", "uber-nyc"), nil
	})
}

// Figure6Stocks are the three burst intensities of Fig. 6.
var Figure6Stocks = []string{"google", "microsoft", "apple"}

// Figure6 measures latency CDFs under the Google, Microsoft and Apple
// NASDAQ bursts on the consortium configuration.
func Figure6(o Options) ([]Cell, error) {
	if o.Tail == 0 {
		o.Tail = 180 * time.Second // Avalanche commits up to 162s in
	}
	type job struct {
		stock string
		chain string
		trace *workloads.Trace
	}
	var jobs []job
	for _, stock := range Figure6Stocks {
		tr, err := workloads.NASDAQ(stock)
		if err != nil {
			return nil, err
		}
		for _, name := range chains.Names() {
			jobs = append(jobs, job{stock: stock, chain: name, trace: tr})
		}
	}
	return o.runCells(len(jobs), func(i int) (Cell, error) {
		j := jobs[i]
		out, err := o.run(j.chain, configs.Consortium, []*workloads.Trace{j.trace})
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, "consortium", "nasdaq-"+j.stock), nil
	})
}

// Table1Claim is a published performance claim from the paper's Table 1.
type Table1Claim struct {
	Chain      string
	ClaimedTPS string
	ClaimedLat string
	Setup      *configs.Config
	LoadTPS    float64
}

// Table1Claims reproduces the paper's claimed-vs-observed comparison: the
// observed side re-runs each chain in the setup the paper observed its
// best result in (testnet for Algorand, datacenter for Avalanche and
// Solana) under a high constant load.
var Table1Claims = []Table1Claim{
	{Chain: "algorand", ClaimedTPS: "1K-46K TPS", ClaimedLat: "2.5-4.5 s", Setup: configs.Testnet, LoadTPS: 2000},
	{Chain: "avalanche", ClaimedTPS: "4.5K TPS", ClaimedLat: "2 s", Setup: configs.Datacenter, LoadTPS: 2000},
	{Chain: "solana", ClaimedTPS: "200K TPS", ClaimedLat: "<1 s", Setup: configs.Datacenter, LoadTPS: 10000},
}

// Table1 measures the observed best performance for the chains with
// published claims.
func Table1(o Options) ([]Cell, error) {
	return o.runCells(len(Table1Claims), func(i int) (Cell, error) {
		claim := Table1Claims[i]
		tr := workloads.NativeConstant(claim.LoadTPS, 120*time.Second)
		out, err := o.run(claim.Chain, claim.Setup, []*workloads.Trace{tr})
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, claim.Setup.Name, tr.Name), nil
	})
}

// ExtensionChains are the beyond-the-paper chains this exhibit compares
// against their closest evaluated relative.
var ExtensionChains = []string{"quorum", "quorum-raft", "redbelly"}

// Extensions runs the repository's extension study: Quorum's IBFT against
// its Raft option and against a Red Belly-style leaderless DBFT, at 1,000
// and 10,000 TPS on the community configuration — testing the paper's
// §6.3 claim that the leaderless design resists the overload collapse.
func Extensions(o Options) ([]Cell, error) {
	type job struct {
		chain string
		tps   float64
	}
	var jobs []job
	for _, name := range ExtensionChains {
		for _, tps := range []float64{1000, 10000} {
			jobs = append(jobs, job{chain: name, tps: tps})
		}
	}
	return o.runCells(len(jobs), func(i int) (Cell, error) {
		j := jobs[i]
		tr := workloads.NativeConstant(j.tps, 120*time.Second)
		out, err := o.run(j.chain, configs.Community, []*workloads.Trace{tr})
		if err != nil {
			return Cell{}, err
		}
		return cellOf(out, "community", tr.Name), nil
	})
}

// CDFOf builds the Fig. 6 latency CDF for a cell (fractions relative to
// all submitted transactions, so the plateau is the commit ratio).
func CDFOf(c Cell) *stats.CDF {
	return stats.NewCDF(c.Latencies, c.Submitted)
}

// FindCell locates a cell by chain and workload.
func FindCell(cells []Cell, chain, workload string) (Cell, error) {
	for _, c := range cells {
		if c.Chain == chain && c.Workload == workload {
			return c, nil
		}
	}
	return Cell{}, fmt.Errorf("report: no cell for %s/%s", chain, workload)
}
