package report

import "diablo/internal/core"

// runCells executes n independent cell builders on a worker pool
// (Options.Workers; <= 0 uses GOMAXPROCS) and returns the cells in index
// order. Each builder runs a fully isolated experiment — own scheduler,
// own RNGs — so the returned cells are bit-identical to a serial loop
// regardless of worker count or completion order; only wall-clock time
// changes. Exhibit grids are embarrassingly parallel: every (chain x
// workload x configuration) cell is independent.
func (o Options) runCells(n int, build func(i int) (Cell, error)) ([]Cell, error) {
	cells := make([]Cell, n)
	err := core.ForEach(o.Workers, n, func(i int) error {
		c, err := build(i)
		if err != nil {
			return err
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}
