package report

import (
	"fmt"
	"io"
	"time"

	"diablo/internal/bench"
	"diablo/internal/configs"
	"diablo/internal/core"
)

// KneeChains are the default engines for the capacity search: one from
// each consensus family the suite models (BFT committee, proof-of-stake
// lottery, metastable DAG).
var KneeChains = []string{"quorum", "algorand", "avalanche"}

// Knees runs the closed-loop capacity search (bench.FindKnee) on each
// named chain in its best configuration. The per-chain searches run on the
// Options worker pool; each search's probes are sequential by nature (the
// next rate depends on the last verdict).
func Knees(names []string, o Options, ko bench.KneeOptions) ([]*bench.KneeResult, error) {
	results := make([]*bench.KneeResult, len(names))
	err := core.ForEach(o.Workers, len(names), func(i int) error {
		opts := ko
		opts.Chain = names[i]
		opts.Config = BestConfig[names[i]]
		if opts.Config == nil {
			// Extension chains have no Figure 4 entry; they run on the
			// community configuration like the extension study does.
			opts.Config = configs.Community
		}
		opts.Seed = o.seed()
		opts.ScaleNodes = o.NodeScale
		res, err := bench.FindKnee(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RenderKnee prints the per-chain capacity report: the knee (highest
// sustainable TPS found), the ceiling above it, and every probe's verdict.
func RenderKnee(w io.Writer, results []*bench.KneeResult) {
	fmt.Fprintln(w, "Capacity knees — closed-loop search for maximum sustainable TPS")
	fmt.Fprintln(w, "a probe is sustainable when the cluster stays up, the commit ratio,")
	fmt.Fprintln(w, "p95 commit latency and backlog growth all stay inside the stopping rules.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s %-12s %12s %14s %7s %s\n",
		"chain", "config", "knee (TPS)", "ceiling (TPS)", "probes", "note")
	for _, r := range results {
		note := ""
		if r.Clipped {
			if r.Knee == 0 {
				note = "below bracket floor"
			} else {
				note = "above bracket ceiling"
			}
		}
		fmt.Fprintf(w, "%-11s %-12s %12.0f %14.0f %7d %s\n",
			r.Chain, r.Config, r.Knee, r.Ceiling, len(r.Probes), note)
	}
	for _, r := range results {
		fmt.Fprintf(w, "\n%s probes:\n", r.Chain)
		for _, p := range r.Probes {
			fmt.Fprintf(w, "  %7.0f TPS  tput %7.0f  p95 %8s  commit %.2f  %s\n",
				p.TPS, p.Throughput, p.P95.Round(10*time.Millisecond), p.CommitRatio, p.Reason)
		}
	}
}

// WriteKneeCSV emits the raw probe series for plotting.
func WriteKneeCSV(w io.Writer, results []*bench.KneeResult) {
	fmt.Fprintln(w, "chain,config,probe_tps,sustainable,throughput_tps,p95_s,commit_ratio,backlog_per_sec,reason")
	for _, r := range results {
		for _, p := range r.Probes {
			fmt.Fprintf(w, "%s,%s,%.0f,%t,%.1f,%.3f,%.4f,%.1f,%q\n",
				r.Chain, r.Config, p.TPS, p.Sustainable, p.Throughput,
				p.P95.Seconds(), p.CommitRatio, p.BacklogPerSec, p.Reason)
		}
	}
}
