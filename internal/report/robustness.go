package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"diablo/internal/bench"
	"diablo/internal/chains"
	"diablo/internal/chaos"
	"diablo/internal/workloads"
)

// RobustnessFaults are the grid's columns: the canonical single-node
// crash-restart probe and a 30-second half-half network partition. Both
// recover well before the observation tail ends, so a correct chain must
// come back and keep every safety and liveness invariant.
var RobustnessFaults = []string{"crash", "partition"}

// robustnessSchedule builds the fault timeline for one grid column given
// the deployment's (scaled) node count.
func robustnessSchedule(fault string, nodes int) *chaos.Schedule {
	if fault == "crash" {
		return chaos.CanonicalCrashRestart(1, 30*time.Second, 60*time.Second)
	}
	// Partition the second half of the nodes away from the first (nodes
	// not listed join side 0), heal after 30 seconds.
	half := make([]int, 0, nodes/2)
	for n := nodes / 2; n < nodes; n++ {
		half = append(half, n)
	}
	return chaos.NewSchedule(
		chaos.Event{At: 30 * time.Second, Kind: chaos.Partition, Sides: [][]int{nil, half}},
		chaos.Event{At: 60 * time.Second, Kind: chaos.Heal},
	)
}

// Robustness runs every chain in its best configuration under each fault
// of the grid with the full invariant monitors armed (agreement, validity,
// integrity, eventual inclusion). The workload is the Figure 4 moderate
// load (1,000 TPS native transfers) so a verdict reflects the fault, not
// overload collapse.
func Robustness(o Options) ([]Cell, error) {
	type job struct {
		chain string
		fault string
	}
	var jobs []job
	for _, name := range chains.Names() {
		for _, fault := range RobustnessFaults {
			jobs = append(jobs, job{chain: name, fault: fault})
		}
	}
	return o.runCells(len(jobs), func(i int) (Cell, error) {
		j := jobs[i]
		cfg := BestConfig[j.chain]
		tr := workloads.NativeConstant(1000, 90*time.Second)
		out, err := bench.Run(bench.Experiment{
			Chain:      j.chain,
			Config:     cfg,
			Traces:     o.traces([]*workloads.Trace{tr}),
			Seed:       o.seed(),
			Tail:       o.Tail,
			ScaleNodes: o.NodeScale,
			Faults:     robustnessSchedule(j.fault, cfg.Scaled(o.NodeScale).Nodes),
			Invariants: true,
		})
		if err != nil {
			return Cell{}, err
		}
		c := cellOf(out, cfg.Name, j.fault)
		return c, nil
	})
}

// verdictOf condenses one grid cell into its table entry.
func verdictOf(c Cell) string {
	switch {
	case c.DeployErr != "":
		return "X"
	case len(c.Violations) > 0:
		return fmt.Sprintf("VIOLATED (%s)", strings.Join(c.Violations, ", "))
	case c.Crashed:
		return "collapsed"
	default:
		return fmt.Sprintf("hold (commit %.2f)", c.Commit)
	}
}

// RenderRobustness prints the chain x fault invariant verdict grid.
func RenderRobustness(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "Robustness grid — invariant verdicts under fault injection")
	fmt.Fprintln(w, "1,000 TPS native transfers in each chain's best configuration;")
	fmt.Fprintln(w, "crash: node 1 down 30s-60s; partition: half-half split 30s-60s.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-11s %-12s %-22s %-22s\n", "chain", "config", "crash", "partition")
	for _, name := range chains.Names() {
		row := map[string]Cell{}
		cfg := ""
		for _, c := range cells {
			if c.Chain == name {
				row[c.Workload] = c
				cfg = c.Config
			}
		}
		fmt.Fprintf(w, "%-11s %-12s %-22s %-22s\n",
			name, cfg, verdictOf(row["crash"]), verdictOf(row["partition"]))
	}
}
