package vm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Assembler builds bytecode programmatically; it is used by the MiniSol
// code generator and by tests. Labels give symbolic jump targets that are
// resolved at Build time.
type Assembler struct {
	code   []byte
	labels map[string]int
	// fixups records positions of PUSH immediates that await label
	// resolution.
	fixups map[int]string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int), fixups: make(map[int]string)}
}

// Op appends a bare opcode.
func (a *Assembler) Op(op Op) *Assembler {
	a.code = append(a.code, byte(op))
	return a
}

// Push appends PUSH with an immediate value.
func (a *Assembler) Push(v uint64) *Assembler {
	a.code = append(a.code, byte(PUSH))
	a.code = binary.BigEndian.AppendUint64(a.code, v)
	return a
}

// PushLabel appends PUSH whose immediate will be the label's address.
func (a *Assembler) PushLabel(name string) *Assembler {
	a.code = append(a.code, byte(PUSH))
	a.fixups[len(a.code)] = name
	a.code = binary.BigEndian.AppendUint64(a.code, 0)
	return a
}

// Label defines a jump target here, emitting a JUMPDEST.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		panic(fmt.Sprintf("vm: duplicate label %q", name))
	}
	a.labels[name] = len(a.code)
	a.code = append(a.code, byte(JUMPDEST))
	return a
}

// Dup appends DUP n.
func (a *Assembler) Dup(n int) *Assembler {
	a.code = append(a.code, byte(DUP), byte(n))
	return a
}

// Swap appends SWAP n.
func (a *Assembler) Swap(n int) *Assembler {
	a.code = append(a.code, byte(SWAP), byte(n))
	return a
}

// Log appends LOG n.
func (a *Assembler) Log(nargs int) *Assembler {
	a.code = append(a.code, byte(LOG), byte(nargs))
	return a
}

// PC returns the current code offset.
func (a *Assembler) PC() int { return len(a.code) }

// Build resolves labels and returns the bytecode.
func (a *Assembler) Build() ([]byte, error) {
	out := append([]byte(nil), a.code...)
	for pos, name := range a.fixups {
		target, ok := a.labels[name]
		if !ok {
			return nil, fmt.Errorf("vm: undefined label %q", name)
		}
		binary.BigEndian.PutUint64(out[pos:], uint64(target))
	}
	return out, nil
}

// MustBuild is Build that panics on error; for tests and static programs.
func (a *Assembler) MustBuild() []byte {
	code, err := a.Build()
	if err != nil {
		panic(err)
	}
	return code
}

// Assemble parses simple one-instruction-per-line assembly text, the
// inverse of Disassemble plus label support ("name:" defines, "@name"
// references). Used in tests.
func Assemble(src string) ([]byte, error) {
	a := NewAssembler()
	nameToOp := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		nameToOp[name] = op
	}
	for lineNo, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			a.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		fields := strings.Fields(line)
		op, ok := nameToOp[strings.ToUpper(fields[0])]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown op %q", lineNo+1, fields[0])
		}
		switch op {
		case PUSH:
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: PUSH needs one operand", lineNo+1)
			}
			if strings.HasPrefix(fields[1], "@") {
				a.PushLabel(fields[1][1:])
			} else {
				v, err := strconv.ParseUint(fields[1], 0, 64)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
				}
				a.Push(v)
			}
		case DUP, SWAP, LOG:
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: %s needs one operand", lineNo+1, op)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			a.code = append(a.code, byte(op), byte(n))
		default:
			if len(fields) != 1 {
				return nil, fmt.Errorf("line %d: %s takes no operand", lineNo+1, op)
			}
			a.Op(op)
		}
	}
	return a.Build()
}
