package vm

import (
	"testing"

	"diablo/internal/types"
)

// touch is one recorded storage access.
type touch struct {
	op  string // "load", "store", "exists", "delete", "len"
	key uint64
}

// touchRecorder collects the full access sequence.
type touchRecorder struct {
	events []touch
}

func (r *touchRecorder) OnLoad(key uint64)   { r.events = append(r.events, touch{"load", key}) }
func (r *touchRecorder) OnStore(key uint64)  { r.events = append(r.events, touch{"store", key}) }
func (r *touchRecorder) OnExists(key uint64) { r.events = append(r.events, touch{"exists", key}) }
func (r *touchRecorder) OnDelete(key uint64) { r.events = append(r.events, touch{"delete", key}) }
func (r *touchRecorder) OnLen()              { r.events = append(r.events, touch{"len", 0}) }

func (r *touchRecorder) has(op string, key uint64) bool {
	for _, e := range r.events {
		if e.op == op && e.key == key {
			return true
		}
	}
	return false
}

// reads/writes classify events the way the parallel executor's RWSet
// does: loads, existence probes and length checks are reads; stores and
// deletes are writes.
func (r *touchRecorder) reads() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, e := range r.events {
		if e.op == "load" || e.op == "exists" {
			out[e.key] = true
		}
	}
	return out
}

func (r *touchRecorder) writes() map[uint64]bool {
	out := make(map[uint64]bool)
	for _, e := range r.events {
		if e.op == "store" || e.op == "delete" {
			out[e.key] = true
		}
	}
	return out
}

// TestRecordingStorageCoversOpcodes pins, opcode by opcode, that every VM
// instruction able to observe or mutate contract storage reports the
// touched slot through the SlotRecorder — including slots derived with
// MAPKEY and the journal's revert restores. The parallel executor's
// conflict detection (internal/pexec) is only sound if this holds.
func TestRecordingStorageCoversOpcodes(t *testing.T) {
	mk := MapKeyOf(3, 5)
	cases := []struct {
		name       string
		src        string
		pre        map[uint64]uint64 // pre-populated slots
		wantStatus types.ExecStatus
		wantReads  []uint64
		wantWrites []uint64
	}{
		{
			name:       "SLOAD reads the slot",
			src:        "PUSH 7\nSLOAD\nRETURN",
			wantStatus: types.StatusOK,
			wantReads:  []uint64{7},
		},
		{
			name:       "SSTORE reads (gas-pricing Exists, journal Load) and writes the slot",
			src:        "PUSH 9\nPUSH 42\nSSTORE\nPUSH 0\nRETURN",
			wantStatus: types.StatusOK,
			wantReads:  []uint64{9},
			wantWrites: []uint64{9},
		},
		{
			name:       "MAPKEY-derived SLOAD reads the mixed slot",
			src:        "PUSH 3\nPUSH 5\nMAPKEY\nSLOAD\nRETURN",
			wantStatus: types.StatusOK,
			wantReads:  []uint64{mk},
		},
		{
			name:       "MAPKEY-derived SSTORE writes the mixed slot",
			src:        "PUSH 3\nPUSH 5\nMAPKEY\nPUSH 1\nSSTORE\nPUSH 0\nRETURN",
			wantStatus: types.StatusOK,
			wantReads:  []uint64{mk},
			wantWrites: []uint64{mk},
		},
		{
			name:       "revert of a created slot deletes (writes) it",
			src:        "PUSH 9\nPUSH 1\nSSTORE\nREVERT",
			wantStatus: types.StatusReverted,
			wantReads:  []uint64{9},
			wantWrites: []uint64{9},
		},
		{
			name:       "revert of an updated slot restores (writes) it",
			src:        "PUSH 9\nPUSH 7\nSSTORE\nREVERT",
			pre:        map[uint64]uint64{9: 5},
			wantStatus: types.StatusReverted,
			wantReads:  []uint64{9},
			wantWrites: []uint64{9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, err := Assemble(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			inner := MapStorage{}
			for k, v := range tc.pre {
				_ = inner.Store(k, v)
			}
			rec := &touchRecorder{}
			res := New().Execute(code, &Context{
				GasLimit: 1_000_000,
				Storage:  RecordingStorage{Inner: inner, Rec: rec},
			})
			if res.Status != tc.wantStatus {
				t.Fatalf("status = %v, want %v (err %v)", res.Status, tc.wantStatus, res.Err)
			}
			reads, writes := rec.reads(), rec.writes()
			for _, k := range tc.wantReads {
				if !reads[k] {
					t.Errorf("slot %d missing from the read set (events %v)", k, rec.events)
				}
			}
			for _, k := range tc.wantWrites {
				if !writes[k] {
					t.Errorf("slot %d missing from the write set (events %v)", k, rec.events)
				}
			}
		})
	}
}

// TestRecordingStorageRevertEvents distinguishes the two revert repair
// paths: Delete for slots the transaction created, Store(prev) for slots
// it updated.
func TestRecordingStorageRevertEvents(t *testing.T) {
	// Created slot: the unwind must Delete.
	code, _ := Assemble("PUSH 9\nPUSH 1\nSSTORE\nREVERT")
	rec := &touchRecorder{}
	New().Execute(code, &Context{GasLimit: 1_000_000, Storage: RecordingStorage{Inner: MapStorage{}, Rec: rec}})
	if !rec.has("delete", 9) {
		t.Fatalf("revert of a created slot did not record a delete: %v", rec.events)
	}

	// Updated slot: the unwind must Store the previous value back.
	inner := MapStorage{}
	_ = inner.Store(9, 5)
	rec = &touchRecorder{}
	New().Execute(code, &Context{GasLimit: 1_000_000, Storage: RecordingStorage{Inner: inner, Rec: rec}})
	stores := 0
	for _, e := range rec.events {
		if e.op == "store" && e.key == 9 {
			stores++
		}
	}
	if stores < 2 {
		t.Fatalf("revert of an updated slot did not record the restore store: %v", rec.events)
	}
	if inner.Load(9) != 5 {
		t.Fatalf("restore lost the previous value: %d", inner.Load(9))
	}
}

// TestRecordingStorageLen pins the length path: bounded profiles probe the
// entry count before admitting a slot, and that probe must surface as a
// recorded read through the wrapper.
func TestRecordingStorageLen(t *testing.T) {
	inner := counted{MapStorage{}}
	_ = inner.Store(1, 1)
	rec := &touchRecorder{}
	rs := RecordingStorage{Inner: inner, Rec: rec}
	if got := rs.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if !rec.has("len", 0) {
		t.Fatalf("Len not recorded: %v", rec.events)
	}
	// A Len-less inner store reports zero instead of panicking.
	rec = &touchRecorder{}
	if got := (RecordingStorage{Inner: lenless{}, Rec: rec}).Len(); got != 0 {
		t.Fatalf("len-less Len = %d", got)
	}
}

// counted adds the Len method bounded profiles rely on.
type counted struct{ MapStorage }

func (c counted) Len() int { return len(c.MapStorage) }

// lenless is a Storage without a Len method.
type lenless struct{}

func (lenless) Load(uint64) uint64         { return 0 }
func (lenless) Store(uint64, uint64) error { return nil }
func (lenless) Exists(uint64) bool         { return false }
func (lenless) Delete(uint64)              {}
