package vm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"diablo/internal/types"
)

func run(t *testing.T, code []byte, ctx *Context) Result {
	t.Helper()
	if ctx == nil {
		ctx = &Context{}
	}
	if ctx.Storage == nil {
		ctx.Storage = MapStorage{}
	}
	if ctx.GasLimit == 0 {
		ctx.GasLimit = 1_000_000
	}
	return New().Execute(code, ctx)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"PUSH 2\nPUSH 3\nADD\nRETURN", 5},
		{"PUSH 10\nPUSH 3\nSUB\nRETURN", 7},
		{"PUSH 6\nPUSH 7\nMUL\nRETURN", 42},
		{"PUSH 20\nPUSH 6\nDIV\nRETURN", 3},
		{"PUSH 20\nPUSH 0\nDIV\nRETURN", 0}, // EVM semantics
		{"PUSH 20\nPUSH 6\nMOD\nRETURN", 2},
		{"PUSH 20\nPUSH 0\nMOD\nRETURN", 0},
		{"PUSH 1\nPUSH 2\nLT\nRETURN", 1},
		{"PUSH 2\nPUSH 1\nLT\nRETURN", 0},
		{"PUSH 2\nPUSH 1\nGT\nRETURN", 1},
		{"PUSH 5\nPUSH 5\nEQ\nRETURN", 1},
		{"PUSH 0\nISZERO\nRETURN", 1},
		{"PUSH 7\nISZERO\nRETURN", 0},
		{"PUSH 12\nPUSH 10\nAND\nRETURN", 8},
		{"PUSH 12\nPUSH 10\nOR\nRETURN", 14},
		{"PUSH 12\nPUSH 10\nXOR\nRETURN", 6},
		{"PUSH 0\nNOT\nRETURN", ^uint64(0)},
	}
	for _, c := range cases {
		code, err := Assemble(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		res := run(t, code, nil)
		if res.Status != types.StatusOK || res.Return != c.want {
			t.Errorf("%q = %d (%v), want %d", strings.ReplaceAll(c.src, "\n", "; "), res.Return, res.Status, c.want)
		}
	}
}

func TestOverflowWraps(t *testing.T) {
	code, _ := Assemble("PUSH 18446744073709551615\nPUSH 1\nADD\nRETURN")
	res := run(t, code, nil)
	if res.Return != 0 {
		t.Fatalf("overflow = %d, want wraparound 0", res.Return)
	}
	code, _ = Assemble("PUSH 0\nPUSH 1\nSUB\nRETURN")
	res = run(t, code, nil)
	if res.Return != ^uint64(0) {
		t.Fatal("underflow did not wrap")
	}
}

func TestStackOps(t *testing.T) {
	code, _ := Assemble("PUSH 1\nPUSH 2\nDUP 1\nRETURN") // dup second from top
	if res := run(t, code, nil); res.Return != 1 {
		t.Fatalf("DUP 1 = %d, want 1", res.Return)
	}
	code, _ = Assemble("PUSH 1\nPUSH 2\nSWAP 1\nRETURN")
	if res := run(t, code, nil); res.Return != 1 {
		t.Fatalf("SWAP 1 top = %d, want 1", res.Return)
	}
	code, _ = Assemble("PUSH 1\nPUSH 2\nPOP\nRETURN")
	if res := run(t, code, nil); res.Return != 1 {
		t.Fatalf("POP = %d, want 1", res.Return)
	}
}

func TestControlFlow(t *testing.T) {
	// if (5 > 3) return 100 else return 200
	src := `
		PUSH 3
		PUSH 5
		GT
		PUSH @then
		JUMPI
		PUSH 200
		RETURN
	then:
		PUSH 100
		RETURN`
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if res := run(t, code, nil); res.Return != 200 {
		// GT pops b=5,a=3 computes a>b -> 3>5 false... document actual:
		t.Fatalf("branch = %d", res.Return)
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 using memory cell 0 as accumulator, cell 1 as i
	src := `
		PUSH 1
		PUSH 1
		MSTORE        ; i = 1
	loop:
		PUSH 1
		MLOAD
		PUSH 10
		GT            ; i > 10 ?
		PUSH @done
		JUMPI
		PUSH 0
		MLOAD
		PUSH 1
		MLOAD
		ADD
		PUSH 0
		SWAP 1
		MSTORE        ; acc += i
		PUSH 1
		MLOAD
		PUSH 1
		ADD
		PUSH 1
		SWAP 1
		MSTORE        ; i++
		PUSH @loop
		JUMP
	done:
		PUSH 0
		MLOAD
		RETURN`
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, code, nil)
	if res.Status != types.StatusOK {
		t.Fatalf("status %v: %v", res.Status, res.Err)
	}
	if res.Return != 55 {
		t.Fatalf("sum = %d, want 55", res.Return)
	}
}

func TestStorage(t *testing.T) {
	st := MapStorage{}
	code, _ := Assemble("PUSH 7\nPUSH 42\nSSTORE\nPUSH 7\nSLOAD\nRETURN")
	res := run(t, code, &Context{Storage: st, GasLimit: 1_000_000})
	if res.Return != 42 {
		t.Fatalf("SLOAD = %d, want 42", res.Return)
	}
	if st[7] != 42 {
		t.Fatal("storage not persisted")
	}
}

func TestSStoreGasPricing(t *testing.T) {
	st := MapStorage{}
	code, _ := Assemble("PUSH 1\nPUSH 1\nSSTORE\nSTOP")
	first := run(t, code, &Context{Storage: st, GasLimit: 1_000_000})
	second := run(t, code, &Context{Storage: st, GasLimit: 1_000_000})
	if first.GasUsed <= second.GasUsed {
		t.Fatalf("fresh SSTORE (%d gas) should cost more than update (%d gas)", first.GasUsed, second.GasUsed)
	}
}

func TestMapKeyDistinct(t *testing.T) {
	code, _ := Assemble("PUSH 1\nPUSH 5\nMAPKEY\nRETURN")
	a := run(t, code, nil).Return
	code, _ = Assemble("PUSH 1\nPUSH 6\nMAPKEY\nRETURN")
	b := run(t, code, nil).Return
	code, _ = Assemble("PUSH 2\nPUSH 5\nMAPKEY\nRETURN")
	c := run(t, code, nil).Return
	if a == b || a == c || b == c {
		t.Fatal("MAPKEY collisions across slots/keys")
	}
}

func TestEnvironmentOps(t *testing.T) {
	ctx := &Context{
		Caller:    1234,
		Value:     5,
		Calldata:  []uint64{9, 8, 7},
		BlockNum:  77,
		BlockTime: 1000,
		Storage:   MapStorage{},
		GasLimit:  100_000,
	}
	cases := []struct {
		src  string
		want uint64
	}{
		{"CALLER\nRETURN", 1234},
		{"CALLVALUE\nRETURN", 5},
		{"CALLDATASIZE\nRETURN", 3},
		{"PUSH 1\nCALLDATA\nRETURN", 8},
		{"PUSH 99\nCALLDATA\nRETURN", 0}, // out of range reads zero
		{"NUMBER\nRETURN", 77},
		{"TIMESTAMP\nRETURN", 1000},
	}
	for _, c := range cases {
		code, _ := Assemble(c.src)
		cc := *ctx
		if res := New().Execute(code, &cc); res.Return != c.want {
			t.Errorf("%q = %d, want %d", c.src, res.Return, c.want)
		}
	}
}

func TestEvents(t *testing.T) {
	code, _ := Assemble("PUSH 10\nPUSH 20\nPUSH 3\nLOG 2\nSTOP")
	res := run(t, code, &Context{Contract: types.Address{1}, Storage: MapStorage{}, GasLimit: 100_000})
	if len(res.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(res.Events))
	}
	ev := res.Events[0]
	if ev.Name != "event-3" || len(ev.Data) != 2 || ev.Data[0] != 10 || ev.Data[1] != 20 {
		t.Fatalf("event = %+v", ev)
	}
}

func TestRevertUndoesStorage(t *testing.T) {
	st := MapStorage{5: 1}
	code, _ := Assemble("PUSH 5\nPUSH 99\nSSTORE\nPUSH 6\nPUSH 100\nSSTORE\nREVERT")
	res := run(t, code, &Context{Storage: st, GasLimit: 1_000_000})
	if res.Status != types.StatusReverted {
		t.Fatalf("status = %v", res.Status)
	}
	if st[5] != 1 {
		t.Fatalf("storage[5] = %d after revert, want 1", st[5])
	}
	if st[6] != 0 {
		t.Fatalf("storage[6] = %d after revert, want 0", st[6])
	}
}

func TestOutOfGas(t *testing.T) {
	code, _ := Assemble("loop:\nPUSH @loop\nJUMP")
	res := run(t, code, &Context{Storage: MapStorage{}, GasLimit: 1000})
	if res.Status != types.StatusOutOfGas {
		t.Fatalf("status = %v, want out of gas", res.Status)
	}
	if res.GasUsed > 1000 {
		t.Fatalf("GasUsed %d exceeds limit", res.GasUsed)
	}
}

func TestOutOfGasRevertsStorage(t *testing.T) {
	st := MapStorage{}
	// Store then loop forever.
	code, _ := Assemble("PUSH 1\nPUSH 9\nSSTORE\nloop:\nPUSH @loop\nJUMP")
	res := run(t, code, &Context{Storage: st, GasLimit: 30_000})
	if res.Status != types.StatusOutOfGas {
		t.Fatalf("status = %v", res.Status)
	}
	if _, ok := st[1]; ok {
		t.Fatal("out-of-gas execution left storage changes")
	}
}

func TestInvalidPrograms(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		err  error
	}{
		{"underflow", []byte{byte(ADD)}, ErrStackUnderflow},
		{"bad jump", NewAssembler().Push(2).Op(JUMP).MustBuild(), ErrBadJump},
		{"jump out of range", NewAssembler().Push(9999).Op(JUMP).MustBuild(), ErrBadJump},
		{"truncated push", []byte{byte(PUSH), 0, 0}, ErrTruncated},
		{"bad opcode", []byte{250}, ErrBadOpcode},
		{"memory bounds", NewAssembler().Push(99999).Op(MLOAD).MustBuild(), ErrMemoryBounds},
	}
	for _, c := range cases {
		res := run(t, c.code, nil)
		if res.Status != types.StatusInvalid {
			t.Errorf("%s: status = %v, want invalid", c.name, res.Status)
		}
		if !errors.Is(res.Err, c.err) {
			t.Errorf("%s: err = %v, want %v", c.name, res.Err, c.err)
		}
	}
}

func TestStackOverflow(t *testing.T) {
	a := NewAssembler()
	a.Push(1)
	for i := 0; i < 2000; i++ {
		a.Dup(0)
	}
	res := run(t, a.MustBuild(), &Context{Storage: MapStorage{}, GasLimit: 10_000_000})
	if res.Status != types.StatusInvalid || !errors.Is(res.Err, ErrStackOverflow) {
		t.Fatalf("status = %v err = %v, want stack overflow", res.Status, res.Err)
	}
}

func TestJumpToNonJumpdest(t *testing.T) {
	// Jump into the middle of a PUSH immediate.
	code := NewAssembler().Push(3).Op(JUMP).Push(0).MustBuild()
	res := run(t, code, nil)
	if !errors.Is(res.Err, ErrBadJump) {
		t.Fatalf("err = %v, want bad jump", res.Err)
	}
}

func TestFallOffEndIsStop(t *testing.T) {
	code, _ := Assemble("PUSH 1\nPUSH 2\nADD")
	res := run(t, code, nil)
	if res.Status != types.StatusOK {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestStorageErrorIsBudgetExceeded(t *testing.T) {
	code, _ := Assemble("PUSH 1\nPUSH 2\nSSTORE\nSTOP")
	res := run(t, code, &Context{Storage: failingStorage{}, GasLimit: 1_000_000})
	if res.Status != types.StatusBudgetExceeded {
		t.Fatalf("status = %v, want budget exceeded", res.Status)
	}
}

type failingStorage struct{}

func (failingStorage) Load(uint64) uint64         { return 0 }
func (failingStorage) Store(uint64, uint64) error { return errors.New("state full") }
func (failingStorage) Exists(uint64) bool         { return false }
func (failingStorage) Delete(uint64)              {}

func TestGasRemainingDecreases(t *testing.T) {
	code, _ := Assemble("GASREMAINING\nRETURN")
	res := run(t, code, &Context{Storage: MapStorage{}, GasLimit: 1000})
	if res.Return >= 1000 {
		t.Fatalf("GASREMAINING = %d, want < limit", res.Return)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := "PUSH 42\nDUP 0\nADD\nPUSH 7\nSSTORE\nLOG 1\nSTOP"
	code, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(code)
	for _, want := range []string{"PUSH 42", "DUP 0", "SSTORE", "LOG 1", "STOP"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"BOGUS",
		"PUSH",
		"PUSH 1 2",
		"ADD 3",
		"DUP",
		"PUSH @nowhere\nJUMP",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssemblerDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	NewAssembler().Label("x").Label("x")
}

// Property: gas used never exceeds the gas limit, for arbitrary bytecode.
func TestGasNeverExceedsLimitProperty(t *testing.T) {
	f := func(code []byte, limit uint16) bool {
		ctx := &Context{Storage: MapStorage{}, GasLimit: uint64(limit)}
		res := New().Execute(code, ctx)
		return res.GasUsed <= uint64(limit)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the interpreter never panics on arbitrary bytecode (fuzz-like
// robustness via testing/quick).
func TestNoPanicOnArbitraryCodeProperty(t *testing.T) {
	f := func(code []byte, calldata []uint64) bool {
		ctx := &Context{Storage: MapStorage{}, GasLimit: 50_000, Calldata: calldata}
		_ = New().Execute(code, ctx)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: executing the same code twice from the same state gives the
// same result (determinism).
func TestDeterministicExecutionProperty(t *testing.T) {
	f := func(code []byte) bool {
		run := func() Result {
			return New().Execute(code, &Context{Storage: MapStorage{}, GasLimit: 20_000})
		}
		a, b := run(), run()
		return a.Status == b.Status && a.GasUsed == b.GasUsed && a.Return == b.Return
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterpreterLoop(b *testing.B) {
	// Tight counting loop of 1000 iterations.
	src := `
		PUSH 0
		PUSH 0
		MSTORE
	loop:
		PUSH 0
		MLOAD
		PUSH 1000
		LT
		ISZERO
		PUSH @done
		JUMPI
		PUSH 0
		MLOAD
		PUSH 1
		ADD
		PUSH 0
		SWAP 1
		MSTORE
		PUSH @loop
		JUMP
	done:
		STOP`
	code, err := Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	in := New()
	ctx := &Context{Storage: MapStorage{}, GasLimit: 10_000_000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := in.Execute(code, ctx)
		if res.Status != types.StatusOK {
			b.Fatal(res.Status, res.Err)
		}
	}
}
