// Package vm implements the gas-metered stack virtual machine that executes
// DIABLO's DApp contracts. It is modeled on the Ethereum Virtual Machine:
// bytecode with 64-bit words, contract storage behind an interface, events,
// revert semantics and an Ethereum-flavoured gas schedule. Per-chain
// execution limits (geth's block-gas-only policy vs the hard per-transaction
// budgets of MoveVM, the Algorand VM and Solana's eBPF) are layered on top
// by package vmprofiles.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"diablo/internal/types"
)

// Op is a bytecode operation.
type Op byte

// The instruction set. PUSH is followed by an 8-byte big-endian immediate.
const (
	STOP Op = iota
	PUSH    // push immediate word
	POP
	DUP  // duplicate stack[top-imm8]; followed by one byte
	SWAP // swap top with stack[top-imm8]; followed by one byte

	ADD
	SUB
	MUL
	DIV // x/0 = 0, like the EVM
	MOD // x%0 = 0
	LT
	GT
	EQ
	ISZERO
	AND
	OR
	XOR
	NOT

	JUMP     // pop dest
	JUMPI    // pop dest, cond; jump if cond != 0
	JUMPDEST // valid jump target marker

	MLOAD  // pop idx; push memory[idx]
	MSTORE // pop idx, value; memory[idx] = value

	SLOAD  // pop key; push storage[key]
	SSTORE // pop key, value; storage[key] = value
	MAPKEY // pop slot, key; push combined storage key

	CALLER       // push sender (low 8 bytes of address)
	CALLVALUE    // push tx value
	CALLDATA     // pop idx; push word idx of calldata
	CALLDATASIZE // push number of calldata words
	TIMESTAMP    // push block timestamp (seconds)
	NUMBER       // push block number
	GASREMAINING // push remaining gas

	LOG    // pop event-id and n args; followed by one byte n
	RETURN // pop value; halt returning it
	REVERT // halt, revert state changes
)

var opNames = map[Op]string{
	STOP: "STOP", PUSH: "PUSH", POP: "POP", DUP: "DUP", SWAP: "SWAP",
	ADD: "ADD", SUB: "SUB", MUL: "MUL", DIV: "DIV", MOD: "MOD",
	LT: "LT", GT: "GT", EQ: "EQ", ISZERO: "ISZERO",
	AND: "AND", OR: "OR", XOR: "XOR", NOT: "NOT",
	JUMP: "JUMP", JUMPI: "JUMPI", JUMPDEST: "JUMPDEST",
	MLOAD: "MLOAD", MSTORE: "MSTORE",
	SLOAD: "SLOAD", SSTORE: "SSTORE", MAPKEY: "MAPKEY",
	CALLER: "CALLER", CALLVALUE: "CALLVALUE", CALLDATA: "CALLDATA",
	CALLDATASIZE: "CALLDATASIZE", TIMESTAMP: "TIMESTAMP", NUMBER: "NUMBER",
	GASREMAINING: "GASREMAINING",
	LOG:          "LOG", RETURN: "RETURN", REVERT: "REVERT",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Gas schedule, scaled like Ethereum's so that published per-block gas
// limits (e.g. Avalanche's 8M) translate into realistic per-block
// transaction counts.
const (
	// GasTxBase is charged for any transaction before execution (21000 in
	// Ethereum).
	GasTxBase = 21000
	// GasTxDataByte is charged per calldata byte.
	GasTxDataByte = 16

	gasBase         = 3   // cheap ops: arithmetic, stack, memory
	gasJump         = 8   // control flow
	gasSLoad        = 800 // cold storage read (Berlin-era pricing)
	gasSStoreNew    = 20000
	gasSStoreUpdate = 5000
	gasLogBase      = 375
	gasLogArg       = 256
	gasMapKey       = 30
)

// Storage abstracts the contract's persistent key/value state so different
// chains can plug in trie-backed or flat state, and so the AVM profile can
// enforce its key-count limits.
type Storage interface {
	Load(key uint64) uint64
	// Store writes a slot. It may return an error to model state-model
	// limits (e.g. the AVM's bounded key-value store); the error aborts
	// execution with StatusBudgetExceeded semantics.
	Store(key, value uint64) error
	// Exists reports whether the slot was ever written (for gas pricing).
	Exists(key uint64) bool
	// Delete removes a slot entirely (used when reverting a write that
	// created the slot).
	Delete(key uint64)
}

// MapStorage is the default in-memory Storage.
type MapStorage map[uint64]uint64

// Load implements Storage.
func (m MapStorage) Load(key uint64) uint64 { return m[key] }

// Store implements Storage.
func (m MapStorage) Store(key, value uint64) error { m[key] = value; return nil }

// Exists implements Storage.
func (m MapStorage) Exists(key uint64) bool { _, ok := m[key]; return ok }

// Delete implements Storage.
func (m MapStorage) Delete(key uint64) { delete(m, key) }

// Context carries the per-call environment.
type Context struct {
	Contract  types.Address
	Caller    uint64 // low 8 bytes of the sender address
	Value     uint64
	Calldata  []uint64
	BlockNum  uint64
	BlockTime uint64 // seconds
	GasLimit  uint64
	Storage   Storage
}

// CallerWord converts an address to the word pushed by CALLER.
func CallerWord(a types.Address) uint64 {
	return binary.BigEndian.Uint64(a[:8])
}

// Result is the outcome of executing a program.
type Result struct {
	Status  types.ExecStatus
	GasUsed uint64
	Return  uint64
	Events  []types.Event
	Err     error
}

// Execution errors.
var (
	ErrStackUnderflow = errors.New("vm: stack underflow")
	ErrStackOverflow  = errors.New("vm: stack overflow")
	ErrBadJump        = errors.New("vm: jump to invalid destination")
	ErrBadOpcode      = errors.New("vm: invalid opcode")
	ErrTruncated      = errors.New("vm: truncated bytecode")
	ErrMemoryBounds   = errors.New("vm: memory index out of range")
	ErrOutOfGas       = errors.New("vm: out of gas")
	ErrReverted       = errors.New("vm: execution reverted")
)

const (
	stackLimit  = 1024
	memoryLimit = 4096
)

// journalEntry records a storage write so reverts can undo it.
type journalEntry struct {
	key     uint64
	prev    uint64
	existed bool
}

// Interpreter executes bytecode. One Interpreter may be reused across calls;
// it is not safe for concurrent use.
type Interpreter struct {
	stack   []uint64
	memory  []uint64
	journal []journalEntry
}

// New returns a fresh interpreter.
func New() *Interpreter {
	return &Interpreter{
		stack:  make([]uint64, 0, stackLimit),
		memory: make([]uint64, memoryLimit),
	}
}

// Execute runs code within ctx. Gas accounting: the transaction base cost
// and calldata cost must be charged by the caller (see ChargeIntrinsic);
// ctx.GasLimit is the execution budget.
func (in *Interpreter) Execute(code []byte, ctx *Context) Result {
	in.stack = in.stack[:0]
	in.journal = in.journal[:0]
	for i := range in.memory {
		in.memory[i] = 0
	}

	gas := ctx.GasLimit
	charge := func(amount uint64) bool {
		if gas < amount {
			gas = 0
			return false
		}
		gas -= amount
		return true
	}
	fail := func(status types.ExecStatus, err error) Result {
		in.revert(ctx.Storage)
		return Result{Status: status, GasUsed: ctx.GasLimit - gas, Err: err}
	}

	var events []types.Event
	pc := 0
	for pc < len(code) {
		op := Op(code[pc])
		pc++
		switch op {
		case STOP:
			return Result{Status: types.StatusOK, GasUsed: ctx.GasLimit - gas, Events: events}

		case PUSH:
			if pc+8 > len(code) {
				return fail(types.StatusInvalid, ErrTruncated)
			}
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) >= stackLimit {
				return fail(types.StatusInvalid, ErrStackOverflow)
			}
			in.stack = append(in.stack, binary.BigEndian.Uint64(code[pc:]))
			pc += 8

		case POP:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 1 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			in.stack = in.stack[:len(in.stack)-1]

		case DUP, SWAP:
			if pc >= len(code) {
				return fail(types.StatusInvalid, ErrTruncated)
			}
			n := int(code[pc])
			pc++
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			top := len(in.stack) - 1
			if top-n < 0 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			if op == DUP {
				if len(in.stack) >= stackLimit {
					return fail(types.StatusInvalid, ErrStackOverflow)
				}
				in.stack = append(in.stack, in.stack[top-n])
			} else {
				in.stack[top], in.stack[top-n] = in.stack[top-n], in.stack[top]
			}

		case ADD, SUB, MUL, DIV, MOD, LT, GT, EQ, AND, OR, XOR:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 2 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			b := in.stack[len(in.stack)-1]
			a := in.stack[len(in.stack)-2]
			in.stack = in.stack[:len(in.stack)-1]
			var r uint64
			switch op {
			case ADD:
				r = a + b
			case SUB:
				r = a - b
			case MUL:
				r = a * b
			case DIV:
				if b != 0 {
					r = a / b
				}
			case MOD:
				if b != 0 {
					r = a % b
				}
			case LT:
				if a < b {
					r = 1
				}
			case GT:
				if a > b {
					r = 1
				}
			case EQ:
				if a == b {
					r = 1
				}
			case AND:
				r = a & b
			case OR:
				r = a | b
			case XOR:
				r = a ^ b
			}
			in.stack[len(in.stack)-1] = r

		case ISZERO, NOT:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 1 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			a := in.stack[len(in.stack)-1]
			if op == ISZERO {
				if a == 0 {
					in.stack[len(in.stack)-1] = 1
				} else {
					in.stack[len(in.stack)-1] = 0
				}
			} else {
				in.stack[len(in.stack)-1] = ^a
			}

		case JUMP, JUMPI:
			if !charge(gasJump) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			need := 1
			if op == JUMPI {
				need = 2
			}
			if len(in.stack) < need {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			dest := in.stack[len(in.stack)-1]
			in.stack = in.stack[:len(in.stack)-1]
			take := true
			if op == JUMPI {
				cond := in.stack[len(in.stack)-1]
				in.stack = in.stack[:len(in.stack)-1]
				take = cond != 0
			}
			if take {
				if dest >= uint64(len(code)) || Op(code[dest]) != JUMPDEST {
					return fail(types.StatusInvalid, ErrBadJump)
				}
				pc = int(dest)
			}

		case JUMPDEST:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}

		case MLOAD, MSTORE:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if op == MLOAD {
				if len(in.stack) < 1 {
					return fail(types.StatusInvalid, ErrStackUnderflow)
				}
				idx := in.stack[len(in.stack)-1]
				if idx >= memoryLimit {
					return fail(types.StatusInvalid, ErrMemoryBounds)
				}
				in.stack[len(in.stack)-1] = in.memory[idx]
			} else {
				if len(in.stack) < 2 {
					return fail(types.StatusInvalid, ErrStackUnderflow)
				}
				val := in.stack[len(in.stack)-1]
				idx := in.stack[len(in.stack)-2]
				in.stack = in.stack[:len(in.stack)-2]
				if idx >= memoryLimit {
					return fail(types.StatusInvalid, ErrMemoryBounds)
				}
				in.memory[idx] = val
			}

		case SLOAD:
			if !charge(gasSLoad) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 1 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			key := in.stack[len(in.stack)-1]
			in.stack[len(in.stack)-1] = ctx.Storage.Load(key)

		case SSTORE:
			if len(in.stack) < 2 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			val := in.stack[len(in.stack)-1]
			key := in.stack[len(in.stack)-2]
			in.stack = in.stack[:len(in.stack)-2]
			cost := uint64(gasSStoreUpdate)
			existed := ctx.Storage.Exists(key)
			if !existed {
				cost = gasSStoreNew
			}
			if !charge(cost) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			in.journal = append(in.journal, journalEntry{key: key, prev: ctx.Storage.Load(key), existed: existed})
			if err := ctx.Storage.Store(key, val); err != nil {
				return fail(types.StatusBudgetExceeded, err)
			}

		case MAPKEY:
			if !charge(gasMapKey) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 2 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			key := in.stack[len(in.stack)-1]
			slot := in.stack[len(in.stack)-2]
			in.stack = in.stack[:len(in.stack)-1]
			in.stack[len(in.stack)-1] = mapKey(slot, key)

		case CALLER, CALLVALUE, CALLDATASIZE, TIMESTAMP, NUMBER, GASREMAINING:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) >= stackLimit {
				return fail(types.StatusInvalid, ErrStackOverflow)
			}
			var v uint64
			switch op {
			case CALLER:
				v = ctx.Caller
			case CALLVALUE:
				v = ctx.Value
			case CALLDATASIZE:
				v = uint64(len(ctx.Calldata))
			case TIMESTAMP:
				v = ctx.BlockTime
			case NUMBER:
				v = ctx.BlockNum
			case GASREMAINING:
				v = gas
			}
			in.stack = append(in.stack, v)

		case CALLDATA:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 1 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			idx := in.stack[len(in.stack)-1]
			var v uint64
			if idx < uint64(len(ctx.Calldata)) {
				v = ctx.Calldata[idx]
			}
			in.stack[len(in.stack)-1] = v

		case LOG:
			if pc >= len(code) {
				return fail(types.StatusInvalid, ErrTruncated)
			}
			nargs := int(code[pc])
			pc++
			if !charge(gasLogBase + uint64(nargs)*gasLogArg) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < nargs+1 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			id := in.stack[len(in.stack)-1]
			args := make([]uint64, nargs)
			for i := 0; i < nargs; i++ {
				args[nargs-1-i] = in.stack[len(in.stack)-2-i]
			}
			in.stack = in.stack[:len(in.stack)-1-nargs]
			events = append(events, types.Event{
				Contract: ctx.Contract,
				Name:     fmt.Sprintf("event-%d", id),
				Data:     args,
			})

		case RETURN:
			if !charge(gasBase) {
				return fail(types.StatusOutOfGas, ErrOutOfGas)
			}
			if len(in.stack) < 1 {
				return fail(types.StatusInvalid, ErrStackUnderflow)
			}
			return Result{
				Status:  types.StatusOK,
				GasUsed: ctx.GasLimit - gas,
				Return:  in.stack[len(in.stack)-1],
				Events:  events,
			}

		case REVERT:
			in.revert(ctx.Storage)
			return Result{Status: types.StatusReverted, GasUsed: ctx.GasLimit - gas, Err: ErrReverted}

		default:
			return fail(types.StatusInvalid, fmt.Errorf("%w: %d at pc %d", ErrBadOpcode, byte(op), pc-1))
		}
	}
	// Fell off the end of the code: treated as STOP.
	return Result{Status: types.StatusOK, GasUsed: ctx.GasLimit - gas, Events: events}
}

// revert undoes journalled storage writes in reverse order.
func (in *Interpreter) revert(st Storage) {
	for i := len(in.journal) - 1; i >= 0; i-- {
		e := in.journal[i]
		if !e.existed {
			st.Delete(e.key)
			continue
		}
		// Best effort: Store may error on constrained backends, but the
		// value being restored was previously accepted.
		_ = st.Store(e.key, e.prev)
	}
	in.journal = in.journal[:0]
}

// mapKey derives the storage key for mapping slot[key], mixing the two
// words with an avalanche hash (SplitMix64 finalizer).
func mapKey(slot, key uint64) uint64 {
	x := slot*0x9E3779B97F4A7C15 + key
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ChargeIntrinsic returns the intrinsic gas of a transaction (base cost
// plus calldata cost), as charged before execution begins.
func ChargeIntrinsic(dataBytes int) uint64 {
	return GasTxBase + uint64(dataBytes)*GasTxDataByte
}

// EncodeCalldata packs a function selector and arguments into calldata
// words (word 0 is the selector).
func EncodeCalldata(selector uint64, args ...uint64) []uint64 {
	out := make([]uint64, 0, 1+len(args))
	out = append(out, selector)
	return append(out, args...)
}

// CalldataBytes returns the byte size of calldata for gas accounting.
func CalldataBytes(calldata []uint64) int { return len(calldata) * 8 }

// Disassemble renders bytecode as human-readable assembly, one instruction
// per line, used by compiler tests and debugging.
func Disassemble(code []byte) string {
	var out []byte
	pc := 0
	for pc < len(code) {
		op := Op(code[pc])
		out = append(out, fmt.Sprintf("%04d %s", pc, op)...)
		pc++
		switch op {
		case PUSH:
			if pc+8 <= len(code) {
				out = append(out, fmt.Sprintf(" %d", binary.BigEndian.Uint64(code[pc:]))...)
				pc += 8
			}
		case DUP, SWAP, LOG:
			if pc < len(code) {
				out = append(out, fmt.Sprintf(" %d", code[pc])...)
				pc++
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}
