package vm

// SlotRecorder receives every storage touch a contract execution makes.
// The parallel block executor (internal/pexec, DESIGN.md §14) records
// them into per-transaction read/write sets; conflict detection is only
// sound if every opcode that can observe or mutate a slot reports here,
// which TestRecordingStorageCoversOpcodes pins down opcode by opcode.
type SlotRecorder interface {
	// OnLoad is an SLOAD (or journal bookkeeping) read of a slot value.
	OnLoad(key uint64)
	// OnStore is an SSTORE (or revert restore) write of a slot.
	OnStore(key uint64)
	// OnExists is an existence probe: SSTORE gas pricing and bounded-store
	// admission both branch on it, so it is a read.
	OnExists(key uint64)
	// OnDelete removes a slot (reverting a write that created it).
	OnDelete(key uint64)
	// OnLen is a read of the store's entry count (bounded profiles check
	// it before admitting a new slot).
	OnLen()
}

// RecordingStorage wraps a Storage, reporting every access to a
// SlotRecorder before forwarding it. A Store that the inner storage
// rejects is still recorded as a write — over-approximation only forces a
// serial re-execution, never a wrong result.
type RecordingStorage struct {
	Inner Storage
	Rec   SlotRecorder
}

// Load implements Storage.
func (r RecordingStorage) Load(key uint64) uint64 {
	r.Rec.OnLoad(key)
	return r.Inner.Load(key)
}

// Store implements Storage.
func (r RecordingStorage) Store(key, value uint64) error {
	r.Rec.OnStore(key)
	return r.Inner.Store(key, value)
}

// Exists implements Storage.
func (r RecordingStorage) Exists(key uint64) bool {
	r.Rec.OnExists(key)
	return r.Inner.Exists(key)
}

// Delete implements Storage.
func (r RecordingStorage) Delete(key uint64) {
	r.Rec.OnDelete(key)
	r.Inner.Delete(key)
}

// Len exposes the inner store's entry count so bounded profiles keep
// working through the wrapper (vmprofiles asserts for it).
func (r RecordingStorage) Len() int {
	r.Rec.OnLen()
	if c, ok := r.Inner.(interface{ Len() int }); ok {
		return c.Len()
	}
	return 0
}

// MapKeyOf exposes the MAPKEY slot derivation (slot[key] mixing) so tests
// and tooling can predict which storage key a mapping access touches.
func MapKeyOf(slot, key uint64) uint64 { return mapKey(slot, key) }
