package minisol

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"diablo/internal/types"
	"diablo/internal/vm"
)

// invoke compiles nothing: it runs an already-compiled contract function.
func invoke(t *testing.T, c *Compiled, st vm.Storage, ctx vm.Context, fn string, args ...uint64) vm.Result {
	t.Helper()
	calldata, err := c.Calldata(fn, args...)
	if err != nil {
		t.Fatalf("Calldata(%s): %v", fn, err)
	}
	ctx.Calldata = calldata
	if ctx.Storage == nil {
		ctx.Storage = st
	}
	if ctx.GasLimit == 0 {
		ctx.GasLimit = 50_000_000
	}
	return vm.New().Execute(c.Code, &ctx)
}

func mustCompile(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

const counterSrc = `
// The FIFA web-service DApp: a contended counter.
contract Counter {
	uint count;
	event Add(uint value);

	function add() public {
		count = count + 1;
		emit Add(count);
	}

	function get() public returns (uint) {
		return count;
	}
}`

func TestCounter(t *testing.T) {
	c := mustCompile(t, counterSrc)
	st := vm.MapStorage{}
	for i := 0; i < 3; i++ {
		res := invoke(t, c, st, vm.Context{}, "add")
		if res.Status != types.StatusOK {
			t.Fatalf("add #%d: %v (%v)", i, res.Status, res.Err)
		}
		if len(res.Events) != 1 || res.Events[0].Data[0] != uint64(i+1) {
			t.Fatalf("add #%d events: %+v", i, res.Events)
		}
	}
	res := invoke(t, c, st, vm.Context{}, "get")
	if res.Return != 3 {
		t.Fatalf("get = %d, want 3", res.Return)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	src := `
contract Math {
	function calc(uint a, uint b, uint c) public returns (uint) {
		return a + b * c - a / 2;
	}
	function cmp(uint a, uint b) public returns (uint) {
		if (a < b && b <= 100 || a == 0) {
			return 1;
		}
		return 0;
	}
	function neg(uint a) public returns (uint) {
		return 0 - a;
	}
	function bang(uint a) public returns (uint) {
		return !a;
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	if res := invoke(t, c, st, vm.Context{}, "calc", 10, 3, 4); res.Return != 10+3*4-5 {
		t.Fatalf("calc = %d, want 17", res.Return)
	}
	cases := []struct {
		a, b, want uint64
	}{
		{1, 2, 1}, {2, 1, 0}, {5, 200, 0}, {0, 0, 1}, {99, 100, 1},
	}
	for _, cse := range cases {
		if res := invoke(t, c, st, vm.Context{}, "cmp", cse.a, cse.b); res.Return != cse.want {
			t.Errorf("cmp(%d,%d) = %d, want %d", cse.a, cse.b, res.Return, cse.want)
		}
	}
	if res := invoke(t, c, st, vm.Context{}, "neg", 1); res.Return != ^uint64(0) {
		t.Fatal("unary minus wrong")
	}
	if res := invoke(t, c, st, vm.Context{}, "bang", 0); res.Return != 1 {
		t.Fatal("! wrong")
	}
}

func TestMappings(t *testing.T) {
	src := `
contract Bank {
	mapping(uint => uint) balances;
	uint total;

	function deposit(uint who, uint amount) public {
		balances[who] += amount;
		total += amount;
	}
	function withdraw(uint who, uint amount) public {
		require(balances[who] >= amount);
		balances[who] -= amount;
		total -= amount;
	}
	function balanceOf(uint who) public returns (uint) {
		return balances[who];
	}
	function totalSupply() public returns (uint) {
		return total;
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	invoke(t, c, st, vm.Context{}, "deposit", 1, 100)
	invoke(t, c, st, vm.Context{}, "deposit", 2, 50)
	invoke(t, c, st, vm.Context{}, "deposit", 1, 25)
	if res := invoke(t, c, st, vm.Context{}, "balanceOf", 1); res.Return != 125 {
		t.Fatalf("balanceOf(1) = %d, want 125", res.Return)
	}
	if res := invoke(t, c, st, vm.Context{}, "balanceOf", 2); res.Return != 50 {
		t.Fatalf("balanceOf(2) = %d, want 50", res.Return)
	}
	if res := invoke(t, c, st, vm.Context{}, "totalSupply"); res.Return != 175 {
		t.Fatalf("total = %d, want 175", res.Return)
	}
	res := invoke(t, c, st, vm.Context{}, "withdraw", 1, 200)
	if res.Status != types.StatusReverted {
		t.Fatalf("over-withdraw status = %v, want reverted", res.Status)
	}
	if res := invoke(t, c, st, vm.Context{}, "balanceOf", 1); res.Return != 125 {
		t.Fatal("revert leaked state changes")
	}
	invoke(t, c, st, vm.Context{}, "withdraw", 1, 125)
	if res := invoke(t, c, st, vm.Context{}, "balanceOf", 1); res.Return != 0 {
		t.Fatal("withdraw failed")
	}
}

func TestLoops(t *testing.T) {
	src := `
contract Loops {
	function sumWhile(uint n) public returns (uint) {
		uint total = 0;
		uint i = 1;
		while (i <= n) {
			total = total + i;
			i = i + 1;
		}
		return total;
	}
	function sumFor(uint n) public returns (uint) {
		uint total = 0;
		for (uint i = 1; i <= n; i += 1) {
			total += i;
		}
		return total;
	}
	function countdown(uint n) public returns (uint) {
		uint steps = 0;
		for (; n > 0;) {
			n -= 1;
			steps += 1;
		}
		return steps;
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	if res := invoke(t, c, st, vm.Context{}, "sumWhile", 10); res.Return != 55 {
		t.Fatalf("sumWhile = %d", res.Return)
	}
	if res := invoke(t, c, st, vm.Context{}, "sumFor", 100); res.Return != 5050 {
		t.Fatalf("sumFor = %d", res.Return)
	}
	if res := invoke(t, c, st, vm.Context{}, "sumFor", 0); res.Return != 0 {
		t.Fatalf("sumFor(0) = %d", res.Return)
	}
	if res := invoke(t, c, st, vm.Context{}, "countdown", 7); res.Return != 7 {
		t.Fatalf("countdown = %d", res.Return)
	}
}

func TestInternalCallsAndNewtonSqrt(t *testing.T) {
	// The paper implements Newton's integer square root in every contract
	// language for the mobility-service DApp.
	src := `
contract SqrtLib {
	function sqrt(uint x) public returns (uint) {
		if (x == 0) {
			return 0;
		}
		uint z = (x + 1) / 2;
		uint y = x;
		while (z < y) {
			y = z;
			z = (x / z + z) / 2;
		}
		return y;
	}
	function distance2(uint dx, uint dy) public returns (uint) {
		return sqrt(dx * dx + dy * dy);
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	for _, cse := range []struct{ in, want uint64 }{
		{0, 0}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {8, 2}, {9, 3},
		{15, 3}, {16, 4}, {100, 10}, {99, 9}, {1 << 32, 1 << 16},
		{10000 * 10000, 10000},
	} {
		res := invoke(t, c, st, vm.Context{}, "sqrt", cse.in)
		if res.Status != types.StatusOK {
			t.Fatalf("sqrt(%d): %v %v", cse.in, res.Status, res.Err)
		}
		if res.Return != cse.want {
			t.Fatalf("sqrt(%d) = %d, want %d", cse.in, res.Return, cse.want)
		}
	}
	if res := invoke(t, c, st, vm.Context{}, "distance2", 3, 4); res.Return != 5 {
		t.Fatalf("distance2(3,4) = %d, want 5", res.Return)
	}
}

func TestChainedInternalCalls(t *testing.T) {
	src := `
contract Chain {
	function inc(uint x) public returns (uint) { return x + 1; }
	function twice(uint x) public returns (uint) { return inc(inc(x)); }
	function mix(uint a, uint b) public returns (uint) { return inc(a) * inc(b); }
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	if res := invoke(t, c, st, vm.Context{}, "twice", 5); res.Return != 7 {
		t.Fatalf("twice = %d", res.Return)
	}
	if res := invoke(t, c, st, vm.Context{}, "mix", 2, 3); res.Return != 12 {
		t.Fatalf("mix = %d", res.Return)
	}
}

func TestVoidCallAsStatement(t *testing.T) {
	src := `
contract V {
	uint x;
	function bump() { x += 1; }
	function run() public returns (uint) {
		bump();
		bump();
		return x;
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	if res := invoke(t, c, st, vm.Context{}, "run"); res.Return != 2 {
		t.Fatalf("run = %d, want 2", res.Return)
	}
	// Private function must not be externally callable.
	if _, err := c.Calldata("bump"); err == nil {
		t.Fatal("private function exposed in ABI")
	}
}

func TestEnvironmentAccess(t *testing.T) {
	src := `
contract E {
	function who() public returns (uint) { return msg.sender; }
	function paid() public returns (uint) { return msg.value; }
	function height() public returns (uint) { return block.number; }
	function now() public returns (uint) { return block.timestamp; }
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	ctx := vm.Context{Caller: 777, Value: 42, BlockNum: 9, BlockTime: 1234}
	if res := invoke(t, c, st, ctx, "who"); res.Return != 777 {
		t.Fatal("msg.sender wrong")
	}
	if res := invoke(t, c, st, ctx, "paid"); res.Return != 42 {
		t.Fatal("msg.value wrong")
	}
	if res := invoke(t, c, st, ctx, "height"); res.Return != 9 {
		t.Fatal("block.number wrong")
	}
	if res := invoke(t, c, st, ctx, "now"); res.Return != 1234 {
		t.Fatal("block.timestamp wrong")
	}
}

func TestUnknownSelectorReverts(t *testing.T) {
	c := mustCompile(t, counterSrc)
	res := vm.New().Execute(c.Code, &vm.Context{
		Storage:  vm.MapStorage{},
		GasLimit: 1_000_000,
		Calldata: []uint64{0xdeadbeef},
	})
	if res.Status != types.StatusReverted {
		t.Fatalf("unknown selector status = %v, want reverted", res.Status)
	}
}

func TestRevertStatement(t *testing.T) {
	src := `
contract R {
	uint x;
	function f(uint v) public {
		x = v;
		if (v > 10) {
			revert();
		}
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	if res := invoke(t, c, st, vm.Context{}, "f", 5); res.Status != types.StatusOK {
		t.Fatal("f(5) should succeed")
	}
	res := invoke(t, c, st, vm.Context{}, "f", 11)
	if res.Status != types.StatusReverted {
		t.Fatalf("f(11) = %v, want reverted", res.Status)
	}
	if res := invoke(t, c, st, vm.Context{}, "f", 5); res.Status != types.StatusOK {
		t.Fatal("state corrupted after revert")
	}
}

func TestElseIfChain(t *testing.T) {
	src := `
contract C {
	function grade(uint score) public returns (uint) {
		if (score >= 90) {
			return 4;
		} else if (score >= 80) {
			return 3;
		} else if (score >= 70) {
			return 2;
		} else {
			return 1;
		}
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	for _, cse := range []struct{ in, want uint64 }{{95, 4}, {90, 4}, {85, 3}, {72, 2}, {10, 1}} {
		if res := invoke(t, c, st, vm.Context{}, "grade", cse.in); res.Return != cse.want {
			t.Errorf("grade(%d) = %d, want %d", cse.in, res.Return, cse.want)
		}
	}
}

func TestScoping(t *testing.T) {
	src := `
contract S {
	function f(uint n) public returns (uint) {
		uint x = 1;
		if (n > 0) {
			uint y = 10;
			x = x + y;
		}
		for (uint i = 0; i < 2; i += 1) {
			uint y = 5;
			x = x + y;
		}
		return x;
	}
}`
	c := mustCompile(t, src)
	st := vm.MapStorage{}
	if res := invoke(t, c, st, vm.Context{}, "f", 1); res.Return != 21 {
		t.Fatalf("f(1) = %d, want 21", res.Return)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", `contract C { function f() public { x = 1; } }`, "undefined"},
		{"undefined read", `contract C { function f() public returns (uint) { return zz; } }`, "undefined"},
		{"undefined function", `contract C { function f() public { g(); } }`, "undefined function"},
		{"undefined event", `contract C { function f() public { emit Nope(); } }`, "undefined event"},
		{"event arity", `contract C { event E(uint a); function f() public { emit E(); } }`, "takes 1 arguments"},
		{"call arity", `contract C { function g(uint a) public {} function f() public { g(); } }`, "takes 1 arguments"},
		{"void in expr", `contract C { function g() public {} function f() public returns (uint) { return g(); } }`, "returns no value"},
		{"missing return value", `contract C { function f() public returns (uint) { return; } }`, "must return a value"},
		{"spurious return value", `contract C { function f() public { return 1; } }`, "does not return"},
		{"recursion", `contract C { function f(uint n) public returns (uint) { return f(n); } }`, "recursive"},
		{"mutual recursion", `contract C {
			function f(uint n) public returns (uint) { return g(n); }
			function g(uint n) public returns (uint) { return f(n); }
		}`, "recursive"},
		{"dup state", `contract C { uint x; uint x; }`, "duplicate state"},
		{"dup function", `contract C { function f() public {} function f() public {} }`, "duplicate function"},
		{"dup event", `contract C { event E(); event E(); }`, "duplicate event"},
		{"dup local", `contract C { function f() public { uint x = 1; uint x = 2; } }`, "redeclared"},
		{"index non-mapping", `contract C { uint x; function f() public { x[1] = 2; } }`, "not a mapping"},
		{"unindexed mapping", `contract C { mapping(uint => uint) m; function f() public { m = 2; } }`, "must be indexed"},
		{"read unindexed mapping", `contract C { mapping(uint => uint) m; function f() public returns (uint) { return m; } }`, "must be indexed"},
		{"parse: missing brace", `contract C { function f() public {`, "unexpected end"},
		{"parse: bad env", `contract C { function f() public returns (uint) { return msg.nope; } }`, "unknown environment"},
		{"parse: garbage", `contract C } {`, "expected"},
		{"lex: bad char", "contract C { uint \x01; }", "unexpected character"},
		{"lex: unterminated comment", `contract C { /* forever }`, "unterminated"},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			_, err := Compile(cse.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", cse.want)
			}
			if !strings.Contains(err.Error(), cse.want) {
				t.Fatalf("error %q does not contain %q", err, cse.want)
			}
		})
	}
}

func TestCalldataErrors(t *testing.T) {
	c := mustCompile(t, counterSrc)
	if _, err := c.Calldata("nope"); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := c.Calldata("add", 1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestSelectorStability(t *testing.T) {
	if Selector("add", 0) != Selector("add", 0) {
		t.Fatal("selector not deterministic")
	}
	if Selector("add", 0) == Selector("add", 1) {
		t.Fatal("selector ignores arity")
	}
	if Selector("add", 0) == Selector("sub", 0) {
		t.Fatal("selector ignores name")
	}
}

// randomExpr builds a random arithmetic expression over the parameters a, b
// and c, returning both MiniSol source text and a Go evaluator.
func randomExpr(rng *rand.Rand, depth int) (string, func(a, b, c uint64) uint64) {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(4) {
		case 0:
			n := uint64(rng.Intn(1000))
			return fmt.Sprint(n), func(a, b, c uint64) uint64 { return n }
		case 1:
			return "a", func(a, b, c uint64) uint64 { return a }
		case 2:
			return "b", func(a, b, c uint64) uint64 { return b }
		default:
			return "c", func(a, b, c uint64) uint64 { return c }
		}
	}
	ls, lf := randomExpr(rng, depth-1)
	rs, rf := randomExpr(rng, depth-1)
	ops := []struct {
		text string
		eval func(x, y uint64) uint64
	}{
		{"+", func(x, y uint64) uint64 { return x + y }},
		{"-", func(x, y uint64) uint64 { return x - y }},
		{"*", func(x, y uint64) uint64 { return x * y }},
		{"/", func(x, y uint64) uint64 {
			if y == 0 {
				return 0
			}
			return x / y
		}},
		{"%", func(x, y uint64) uint64 {
			if y == 0 {
				return 0
			}
			return x % y
		}},
		{"<", func(x, y uint64) uint64 {
			if x < y {
				return 1
			}
			return 0
		}},
		{">", func(x, y uint64) uint64 {
			if x > y {
				return 1
			}
			return 0
		}},
		{"==", func(x, y uint64) uint64 {
			if x == y {
				return 1
			}
			return 0
		}},
	}
	op := ops[rng.Intn(len(ops))]
	return "(" + ls + " " + op.text + " " + rs + ")",
		func(a, b, c uint64) uint64 { return op.eval(lf(a, b, c), rf(a, b, c)) }
}

// Property: for random expressions, compiled execution matches a direct Go
// evaluation (compiler correctness differential test).
func TestCompiledExpressionEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		exprSrc, eval := randomExpr(rng, 4)
		src := fmt.Sprintf(`contract P { function f(uint a, uint b, uint c) public returns (uint) { return %s; } }`, exprSrc)
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile %q: %v", trial, exprSrc, err)
		}
		for sample := 0; sample < 5; sample++ {
			a, b, cc := uint64(rng.Intn(100)), uint64(rng.Intn(100)), uint64(rng.Intn(100))
			calldata, _ := c.Calldata("f", a, b, cc)
			res := vm.New().Execute(c.Code, &vm.Context{
				Storage: vm.MapStorage{}, GasLimit: 10_000_000, Calldata: calldata,
			})
			if res.Status != types.StatusOK {
				t.Fatalf("trial %d: %q failed: %v %v", trial, exprSrc, res.Status, res.Err)
			}
			if want := eval(a, b, cc); res.Return != want {
				t.Fatalf("trial %d: %q with (%d,%d,%d) = %d, want %d",
					trial, exprSrc, a, b, cc, res.Return, want)
			}
		}
	}
}

func BenchmarkCompileCounter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(counterSrc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteCounterAdd(b *testing.B) {
	c, err := Compile(counterSrc)
	if err != nil {
		b.Fatal(err)
	}
	calldata, _ := c.Calldata("add")
	st := vm.MapStorage{}
	in := vm.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := in.Execute(c.Code, &vm.Context{Storage: st, GasLimit: 1_000_000, Calldata: calldata})
		if res.Status != types.StatusOK {
			b.Fatal(res.Status)
		}
	}
}
