package minisol

// AST node definitions for MiniSol.

// Contract is a parsed contract.
type Contract struct {
	Name   string
	States []*StateVar
	Events []*EventDecl
	Funcs  []*Function
}

// StateVar is a contract-level storage variable.
type StateVar struct {
	Name      string
	IsMapping bool
	Slot      uint64 // assigned in declaration order
	Line      int
}

// EventDecl declares an event and its arity.
type EventDecl struct {
	Name  string
	Arity int
	ID    uint64 // assigned in declaration order
	Line  int
}

// Function is a contract function.
type Function struct {
	Name    string
	Params  []string
	Public  bool
	Returns bool
	Body    []Stmt
	Line    int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// VarDecl declares and initializes a local: uint x = expr;
type VarDecl struct {
	Name string
	Init Expr
	Line int
}

// Assign writes to a local, a state variable or a mapping element. Op is
// "=", "+=" or "-=".
type Assign struct {
	Target string
	Index  Expr // non-nil for mapping element assignment
	Op     string
	Value  Expr
	Line   int
}

// If is a conditional with an optional else branch.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// While is a pre-test loop.
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// For is for (init; cond; post) { body }.
type For struct {
	Init Stmt // VarDecl or Assign, may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // Assign, may be nil
	Body []Stmt
	Line int
}

// Require aborts with revert when the condition is false.
type Require struct {
	Cond Expr
	Line int
}

// Emit raises an event.
type Emit struct {
	Event string
	Args  []Expr
	Line  int
}

// Return exits the function, optionally with a value.
type Return struct {
	Value Expr // nil for bare return
	Line  int
}

// Revert aborts the transaction.
type Revert struct{ Line int }

// ExprStmt evaluates an expression for its side effects (function calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*VarDecl) stmt()  {}
func (*Assign) stmt()   {}
func (*If) stmt()       {}
func (*While) stmt()    {}
func (*For) stmt()      {}
func (*Require) stmt()  {}
func (*Emit) stmt()     {}
func (*Return) stmt()   {}
func (*Revert) stmt()   {}
func (*ExprStmt) stmt() {}

// Expr is an expression node.
type Expr interface{ expr() }

// Num is an integer literal.
type Num struct {
	Value uint64
	Line  int
}

// Ref reads a local, parameter or state variable.
type Ref struct {
	Name string
	Line int
}

// Index reads a mapping element: m[expr].
type Index struct {
	Name string
	Key  Expr
	Line int
}

// Binary applies an infix operator.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Unary applies ! or unary minus.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Call invokes an internal function.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Env reads the environment: msg.sender, msg.value, block.number,
// block.timestamp.
type Env struct {
	Name string // "msg.sender" etc.
	Line int
}

func (*Num) expr()    {}
func (*Ref) expr()    {}
func (*Index) expr()  {}
func (*Binary) expr() {}
func (*Unary) expr()  {}
func (*Call) expr()   {}
func (*Env) expr()    {}
