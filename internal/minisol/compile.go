package minisol

import (
	"encoding/binary"
	"fmt"

	"diablo/internal/types"
	"diablo/internal/vm"
)

// FuncMeta describes a compiled function for ABI encoding.
type FuncMeta struct {
	Name      string
	Selector  uint64
	NumParams int
	Returns   bool
	Public    bool
}

// Compiled is the output of the compiler: deployable bytecode plus ABI.
type Compiled struct {
	Name      string
	Code      []byte
	Functions map[string]*FuncMeta
	Events    map[string]*EventDecl
}

// Selector derives a function's dispatch selector from its name and arity.
func Selector(name string, numParams int) uint64 {
	sig := fmt.Sprintf("%s/%d", name, numParams)
	h := types.HashBytes([]byte(sig))
	return binary.BigEndian.Uint64(h[:8])
}

// Calldata builds the calldata words to invoke a compiled function.
func (c *Compiled) Calldata(fn string, args ...uint64) ([]uint64, error) {
	meta, ok := c.Functions[fn]
	if !ok {
		return nil, fmt.Errorf("minisol: contract %s has no function %q", c.Name, fn)
	}
	if !meta.Public {
		return nil, fmt.Errorf("minisol: function %q is not public", fn)
	}
	if len(args) != meta.NumParams {
		return nil, fmt.Errorf("minisol: function %q takes %d arguments, got %d", fn, meta.NumParams, len(args))
	}
	return vm.EncodeCalldata(meta.Selector, args...), nil
}

// Compile parses and compiles MiniSol source to VM bytecode.
func Compile(src string) (*Compiled, error) {
	contract, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Generate(contract)
}

// compileError is a positioned semantic error.
func compileError(line int, format string, args ...any) error {
	return fmt.Errorf("minisol: line %d: %s", line, fmt.Sprintf(format, args...))
}

// scope maps local variable names to memory slots, with lexical nesting.
type scope struct {
	parent *scope
	vars   map[string]uint64
}

func (s *scope) lookup(name string) (uint64, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if slot, ok := cur.vars[name]; ok {
			return slot, true
		}
	}
	return 0, false
}

// generator holds code generation state for one contract.
type generator struct {
	contract *Contract
	asm      *vm.Assembler
	states   map[string]*StateVar
	events   map[string]*EventDecl
	funcs    map[string]*Function
	meta     map[string]*FuncMeta

	// paramSlots maps each function to its parameter memory slots.
	paramSlots map[string][]uint64
	nextSlot   uint64
	labelSeq   int

	// current function being generated.
	cur *Function
}

// Generate compiles a parsed contract.
func Generate(c *Contract) (*Compiled, error) {
	g := &generator{
		contract:   c,
		asm:        vm.NewAssembler(),
		states:     map[string]*StateVar{},
		events:     map[string]*EventDecl{},
		funcs:      map[string]*Function{},
		meta:       map[string]*FuncMeta{},
		paramSlots: map[string][]uint64{},
	}
	for _, sv := range c.States {
		if _, dup := g.states[sv.Name]; dup {
			return nil, compileError(sv.Line, "duplicate state variable %q", sv.Name)
		}
		g.states[sv.Name] = sv
	}
	for _, ev := range c.Events {
		if _, dup := g.events[ev.Name]; dup {
			return nil, compileError(ev.Line, "duplicate event %q", ev.Name)
		}
		g.events[ev.Name] = ev
	}
	for _, fn := range c.Funcs {
		if _, dup := g.funcs[fn.Name]; dup {
			return nil, compileError(fn.Line, "duplicate function %q", fn.Name)
		}
		if _, clash := g.states[fn.Name]; clash {
			return nil, compileError(fn.Line, "function %q shadows a state variable", fn.Name)
		}
		g.funcs[fn.Name] = fn
		g.meta[fn.Name] = &FuncMeta{
			Name:      fn.Name,
			Selector:  Selector(fn.Name, len(fn.Params)),
			NumParams: len(fn.Params),
			Returns:   fn.Returns,
			Public:    fn.Public,
		}
		// Reserve parameter slots up front so calls can be generated in any
		// order.
		slots := make([]uint64, len(fn.Params))
		for i := range slots {
			slots[i] = g.alloc()
		}
		g.paramSlots[fn.Name] = slots
	}
	if err := checkNoRecursion(g.funcs); err != nil {
		return nil, err
	}

	g.dispatcher()
	for _, fn := range c.Funcs {
		if err := g.function(fn); err != nil {
			return nil, err
		}
	}
	// Shared revert target for require failures and unknown selectors.
	g.asm.Label("_revert").Op(vm.REVERT)

	code, err := g.asm.Build()
	if err != nil {
		return nil, err
	}
	return &Compiled{Name: c.Name, Code: code, Functions: g.meta, Events: g.events}, nil
}

// alloc reserves one memory slot.
func (g *generator) alloc() uint64 {
	s := g.nextSlot
	g.nextSlot++
	return s
}

// label returns a fresh unique label.
func (g *generator) label(hint string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", hint, g.labelSeq)
}

// checkNoRecursion rejects call cycles: both backends allocate locals
// statically (memory slots on the EVM-style VM, scratch slots on the AVM),
// so re-entering a function would clobber its frame.
func checkNoRecursion(funcs map[string]*Function) error {
	callees := map[string][]string{}
	for name, fn := range funcs {
		seen := map[string]bool{}
		var visitExpr func(e Expr)
		var visitStmts func(ss []Stmt)
		visitExpr = func(e Expr) {
			switch x := e.(type) {
			case *Call:
				if !seen[x.Name] {
					seen[x.Name] = true
					callees[name] = append(callees[name], x.Name)
				}
				for _, a := range x.Args {
					visitExpr(a)
				}
			case *Binary:
				visitExpr(x.L)
				visitExpr(x.R)
			case *Unary:
				visitExpr(x.X)
			case *Index:
				visitExpr(x.Key)
			}
		}
		visitStmts = func(ss []Stmt) {
			for _, s := range ss {
				switch x := s.(type) {
				case *VarDecl:
					visitExpr(x.Init)
				case *Assign:
					if x.Index != nil {
						visitExpr(x.Index)
					}
					visitExpr(x.Value)
				case *If:
					visitExpr(x.Cond)
					visitStmts(x.Then)
					visitStmts(x.Else)
				case *While:
					visitExpr(x.Cond)
					visitStmts(x.Body)
				case *For:
					if x.Init != nil {
						visitStmts([]Stmt{x.Init})
					}
					if x.Cond != nil {
						visitExpr(x.Cond)
					}
					if x.Post != nil {
						visitStmts([]Stmt{x.Post})
					}
					visitStmts(x.Body)
				case *Require:
					visitExpr(x.Cond)
				case *Emit:
					for _, a := range x.Args {
						visitExpr(a)
					}
				case *Return:
					if x.Value != nil {
						visitExpr(x.Value)
					}
				case *ExprStmt:
					visitExpr(x.X)
				}
			}
		}
		visitStmts(fn.Body)
	}
	// DFS cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var dfs func(n string) error
	dfs = func(n string) error {
		color[n] = grey
		for _, m := range callees[n] {
			if _, ok := funcs[m]; !ok {
				continue // undefined callee reported during generation
			}
			switch color[m] {
			case grey:
				return compileError(funcs[n].Line, "recursive call cycle through %q is not supported", m)
			case white:
				if err := dfs(m); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for name := range funcs {
		if color[name] == white {
			if err := dfs(name); err != nil {
				return err
			}
		}
	}
	return nil
}

// dispatcher emits the entry-point selector switch.
func (g *generator) dispatcher() {
	a := g.asm
	a.Push(0).Op(vm.CALLDATA) // stack: [selector]
	for _, fn := range g.contract.Funcs {
		if !fn.Public {
			continue
		}
		a.Dup(0).Push(g.meta[fn.Name].Selector).Op(vm.EQ)
		a.PushLabel("_ext_" + fn.Name).Op(vm.JUMPI)
	}
	a.PushLabel("_revert").Op(vm.JUMP) // unknown selector

	for _, fn := range g.contract.Funcs {
		if !fn.Public {
			continue
		}
		a.Label("_ext_" + fn.Name)
		a.Op(vm.POP) // drop selector
		for i := range fn.Params {
			// memory[param_slot_i] = calldata[i+1]
			a.Push(g.paramSlots[fn.Name][i])
			a.Push(uint64(i + 1)).Op(vm.CALLDATA)
			a.Op(vm.MSTORE)
		}
		exit := "_extdone_" + fn.Name
		a.PushLabel(exit)
		a.PushLabel("_fn_" + fn.Name).Op(vm.JUMP)
		a.Label(exit)
		if fn.Returns {
			a.Op(vm.RETURN)
		} else {
			a.Op(vm.STOP)
		}
	}
}

// function generates the body of one function. Calling convention: the
// caller pushes a return address and jumps to _fn_<name>; parameters are in
// the function's reserved memory slots; `return` jumps back through the
// return address, leaving the return value (if any) on the stack beneath
// nothing else.
func (g *generator) function(fn *Function) error {
	g.cur = fn
	g.asm.Label("_fn_" + fn.Name)
	sc := &scope{vars: map[string]uint64{}}
	for i, p := range fn.Params {
		if _, dup := sc.vars[p]; dup {
			return compileError(fn.Line, "duplicate parameter %q", p)
		}
		sc.vars[p] = g.paramSlots[fn.Name][i]
	}
	if err := g.stmts(fn.Body, sc); err != nil {
		return err
	}
	// Implicit return at the end of the body.
	if fn.Returns {
		// stack: [retaddr] -> [0, retaddr]
		g.asm.Push(0).Swap(1).Op(vm.JUMP)
	} else {
		g.asm.Op(vm.JUMP)
	}
	return nil
}

func (g *generator) stmts(ss []Stmt, sc *scope) error {
	for _, s := range ss {
		if err := g.stmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (g *generator) stmt(s Stmt, sc *scope) error {
	a := g.asm
	switch x := s.(type) {
	case *VarDecl:
		if _, dup := sc.vars[x.Name]; dup {
			return compileError(x.Line, "variable %q redeclared in this scope", x.Name)
		}
		slot := g.alloc()
		a.Push(slot)
		if err := g.expr(x.Init, sc); err != nil {
			return err
		}
		a.Op(vm.MSTORE)
		sc.vars[x.Name] = slot
		return nil

	case *Assign:
		return g.assign(x, sc)

	case *If:
		elseL, endL := g.label("else"), g.label("endif")
		if err := g.expr(x.Cond, sc); err != nil {
			return err
		}
		a.Op(vm.ISZERO).PushLabel(elseL).Op(vm.JUMPI)
		if err := g.stmts(x.Then, &scope{parent: sc, vars: map[string]uint64{}}); err != nil {
			return err
		}
		a.PushLabel(endL).Op(vm.JUMP)
		a.Label(elseL)
		if err := g.stmts(x.Else, &scope{parent: sc, vars: map[string]uint64{}}); err != nil {
			return err
		}
		a.Label(endL)
		return nil

	case *While:
		startL, endL := g.label("while"), g.label("wend")
		a.Label(startL)
		if err := g.expr(x.Cond, sc); err != nil {
			return err
		}
		a.Op(vm.ISZERO).PushLabel(endL).Op(vm.JUMPI)
		if err := g.stmts(x.Body, &scope{parent: sc, vars: map[string]uint64{}}); err != nil {
			return err
		}
		a.PushLabel(startL).Op(vm.JUMP)
		a.Label(endL)
		return nil

	case *For:
		inner := &scope{parent: sc, vars: map[string]uint64{}}
		if x.Init != nil {
			if err := g.stmt(x.Init, inner); err != nil {
				return err
			}
		}
		startL, endL := g.label("for"), g.label("fend")
		a.Label(startL)
		if x.Cond != nil {
			if err := g.expr(x.Cond, inner); err != nil {
				return err
			}
			a.Op(vm.ISZERO).PushLabel(endL).Op(vm.JUMPI)
		}
		if err := g.stmts(x.Body, &scope{parent: inner, vars: map[string]uint64{}}); err != nil {
			return err
		}
		if x.Post != nil {
			if err := g.stmt(x.Post, inner); err != nil {
				return err
			}
		}
		a.PushLabel(startL).Op(vm.JUMP)
		a.Label(endL)
		return nil

	case *Require:
		if err := g.expr(x.Cond, sc); err != nil {
			return err
		}
		a.Op(vm.ISZERO).PushLabel("_revert").Op(vm.JUMPI)
		return nil

	case *Emit:
		ev, ok := g.events[x.Event]
		if !ok {
			return compileError(x.Line, "undefined event %q", x.Event)
		}
		if len(x.Args) != ev.Arity {
			return compileError(x.Line, "event %q takes %d arguments, got %d", x.Event, ev.Arity, len(x.Args))
		}
		for _, arg := range x.Args {
			if err := g.expr(arg, sc); err != nil {
				return err
			}
		}
		a.Push(ev.ID)
		a.Log(len(x.Args))
		return nil

	case *Return:
		if g.cur.Returns {
			if x.Value == nil {
				return compileError(x.Line, "function %q must return a value", g.cur.Name)
			}
			if err := g.expr(x.Value, sc); err != nil {
				return err
			}
			a.Swap(1).Op(vm.JUMP) // [retaddr, val] -> [val, retaddr] -> jump
		} else {
			if x.Value != nil {
				return compileError(x.Line, "function %q does not return a value", g.cur.Name)
			}
			a.Op(vm.JUMP) // retaddr on top
		}
		return nil

	case *Revert:
		a.Op(vm.REVERT)
		return nil

	case *ExprStmt:
		produces, err := g.exprMaybeVoid(x.X, sc)
		if err != nil {
			return err
		}
		if produces {
			a.Op(vm.POP)
		}
		return nil

	default:
		return fmt.Errorf("minisol: unknown statement %T", s)
	}
}

func (g *generator) assign(x *Assign, sc *scope) error {
	a := g.asm
	// Local variable?
	if slot, ok := sc.lookup(x.Target); ok {
		if x.Index != nil {
			return compileError(x.Line, "%q is not a mapping", x.Target)
		}
		a.Push(slot)
		if x.Op != "=" {
			a.Push(slot).Op(vm.MLOAD)
		}
		if err := g.expr(x.Value, sc); err != nil {
			return err
		}
		switch x.Op {
		case "+=":
			a.Op(vm.ADD)
		case "-=":
			a.Op(vm.SUB)
		}
		a.Op(vm.MSTORE)
		return nil
	}
	sv, ok := g.states[x.Target]
	if !ok {
		return compileError(x.Line, "assignment to undefined variable %q", x.Target)
	}
	if sv.IsMapping != (x.Index != nil) {
		if sv.IsMapping {
			return compileError(x.Line, "mapping %q must be indexed", x.Target)
		}
		return compileError(x.Line, "%q is not a mapping", x.Target)
	}
	if sv.IsMapping {
		// Compute the mapping key once.
		a.Push(sv.Slot)
		if err := g.expr(x.Index, sc); err != nil {
			return err
		}
		a.Op(vm.MAPKEY) // [mk]
		if x.Op != "=" {
			a.Dup(0).Op(vm.SLOAD) // [mk, old]
		}
	} else {
		a.Push(sv.Slot)
		if x.Op != "=" {
			a.Push(sv.Slot).Op(vm.SLOAD)
		}
	}
	if err := g.expr(x.Value, sc); err != nil {
		return err
	}
	switch x.Op {
	case "+=":
		a.Op(vm.ADD)
	case "-=":
		a.Op(vm.SUB)
	}
	a.Op(vm.SSTORE)
	return nil
}

// expr generates code that leaves exactly one value on the stack.
func (g *generator) expr(e Expr, sc *scope) error {
	produces, err := g.exprMaybeVoid(e, sc)
	if err != nil {
		return err
	}
	if !produces {
		call := e.(*Call)
		return compileError(call.Line, "function %q returns no value", call.Name)
	}
	return nil
}

// exprMaybeVoid generates an expression, reporting whether it leaves a
// value on the stack (false only for void function calls).
func (g *generator) exprMaybeVoid(e Expr, sc *scope) (bool, error) {
	a := g.asm
	switch x := e.(type) {
	case *Num:
		a.Push(x.Value)
		return true, nil

	case *Ref:
		if slot, ok := sc.lookup(x.Name); ok {
			a.Push(slot).Op(vm.MLOAD)
			return true, nil
		}
		if sv, ok := g.states[x.Name]; ok {
			if sv.IsMapping {
				return false, compileError(x.Line, "mapping %q must be indexed", x.Name)
			}
			a.Push(sv.Slot).Op(vm.SLOAD)
			return true, nil
		}
		return false, compileError(x.Line, "undefined variable %q", x.Name)

	case *Index:
		sv, ok := g.states[x.Name]
		if !ok {
			return false, compileError(x.Line, "undefined mapping %q", x.Name)
		}
		if !sv.IsMapping {
			return false, compileError(x.Line, "%q is not a mapping", x.Name)
		}
		a.Push(sv.Slot)
		if err := g.expr(x.Key, sc); err != nil {
			return false, err
		}
		a.Op(vm.MAPKEY).Op(vm.SLOAD)
		return true, nil

	case *Env:
		switch x.Name {
		case "msg.sender":
			a.Op(vm.CALLER)
		case "msg.value":
			a.Op(vm.CALLVALUE)
		case "block.number":
			a.Op(vm.NUMBER)
		case "block.timestamp":
			a.Op(vm.TIMESTAMP)
		}
		return true, nil

	case *Unary:
		if x.Op == "-" {
			a.Push(0)
			if err := g.expr(x.X, sc); err != nil {
				return false, err
			}
			a.Op(vm.SUB)
			return true, nil
		}
		if err := g.expr(x.X, sc); err != nil {
			return false, err
		}
		a.Op(vm.ISZERO)
		return true, nil

	case *Binary:
		if err := g.expr(x.L, sc); err != nil {
			return false, err
		}
		if x.Op == "&&" || x.Op == "||" {
			// Booleanize the left operand.
			a.Op(vm.ISZERO).Op(vm.ISZERO)
		}
		if err := g.expr(x.R, sc); err != nil {
			return false, err
		}
		switch x.Op {
		case "+":
			a.Op(vm.ADD)
		case "-":
			a.Op(vm.SUB)
		case "*":
			a.Op(vm.MUL)
		case "/":
			a.Op(vm.DIV)
		case "%":
			a.Op(vm.MOD)
		case "<":
			a.Op(vm.LT)
		case ">":
			a.Op(vm.GT)
		case "<=":
			a.Op(vm.GT).Op(vm.ISZERO)
		case ">=":
			a.Op(vm.LT).Op(vm.ISZERO)
		case "==":
			a.Op(vm.EQ)
		case "!=":
			a.Op(vm.EQ).Op(vm.ISZERO)
		case "&&":
			a.Op(vm.ISZERO).Op(vm.ISZERO).Op(vm.AND)
		case "||":
			a.Op(vm.ISZERO).Op(vm.ISZERO).Op(vm.OR)
		default:
			return false, compileError(x.Line, "unknown operator %q", x.Op)
		}
		return true, nil

	case *Call:
		callee, ok := g.funcs[x.Name]
		if !ok {
			return false, compileError(x.Line, "undefined function %q", x.Name)
		}
		if len(x.Args) != len(callee.Params) {
			return false, compileError(x.Line, "function %q takes %d arguments, got %d",
				x.Name, len(callee.Params), len(x.Args))
		}
		// Evaluate all arguments first (they may call other functions),
		// then pop them into the callee's parameter slots in reverse.
		for _, arg := range x.Args {
			if err := g.expr(arg, sc); err != nil {
				return false, err
			}
		}
		slots := g.paramSlots[x.Name]
		for i := len(slots) - 1; i >= 0; i-- {
			a.Push(slots[i]).Swap(1).Op(vm.MSTORE)
		}
		ret := g.label("ret")
		a.PushLabel(ret)
		a.PushLabel("_fn_" + x.Name).Op(vm.JUMP)
		a.Label(ret)
		return callee.Returns, nil

	default:
		return false, fmt.Errorf("minisol: unknown expression %T", e)
	}
}
