package minisol

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a single contract definition.
func Parse(src string) (*Contract, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	c, err := p.contract()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %s after contract", p.cur())
	}
	return c, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("minisol: line %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// at reports whether the current token matches kind (and text, when given).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		what := text
		if what == "" {
			what = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
		}
		return token{}, p.errorf("expected %q, found %s", what, p.cur())
	}
	t := p.cur()
	p.pos++
	return t, nil
}

func (p *parser) contract() (*Contract, error) {
	if _, err := p.expect(tokKeyword, "contract"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	c := &Contract{Name: name.text}
	for !p.at(tokPunct, "}") {
		switch {
		case p.at(tokKeyword, "uint"), p.at(tokKeyword, "mapping"):
			sv, err := p.stateVar()
			if err != nil {
				return nil, err
			}
			sv.Slot = uint64(len(c.States))
			c.States = append(c.States, sv)
		case p.at(tokKeyword, "event"):
			ev, err := p.eventDecl()
			if err != nil {
				return nil, err
			}
			ev.ID = uint64(len(c.Events))
			c.Events = append(c.Events, ev)
		case p.at(tokKeyword, "function"):
			fn, err := p.function()
			if err != nil {
				return nil, err
			}
			c.Funcs = append(c.Funcs, fn)
		default:
			return nil, p.errorf("expected state variable, event or function, found %s", p.cur())
		}
	}
	if _, err := p.expect(tokPunct, "}"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) stateVar() (*StateVar, error) {
	line := p.cur().line
	isMapping := false
	if p.accept(tokKeyword, "mapping") {
		isMapping = true
		for _, tok := range []struct {
			k tokenKind
			t string
		}{{tokPunct, "("}, {tokKeyword, "uint"}, {tokPunct, "=>"}, {tokKeyword, "uint"}, {tokPunct, ")"}} {
			if _, err := p.expect(tok.k, tok.t); err != nil {
				return nil, err
			}
		}
	} else if _, err := p.expect(tokKeyword, "uint"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &StateVar{Name: name.text, IsMapping: isMapping, Line: line}, nil
}

func (p *parser) eventDecl() (*EventDecl, error) {
	line := p.cur().line
	p.pos++ // "event"
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	arity := 0
	for !p.at(tokPunct, ")") {
		if arity > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "uint"); err != nil {
			return nil, err
		}
		// Parameter name is optional in event declarations.
		p.accept(tokIdent, "")
		arity++
	}
	p.pos++ // ")"
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &EventDecl{Name: name.text, Arity: arity, Line: line}, nil
}

func (p *parser) function() (*Function, error) {
	line := p.cur().line
	p.pos++ // "function"
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &Function{Name: name.text, Line: line}
	for !p.at(tokPunct, ")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokKeyword, "uint"); err != nil {
			return nil, err
		}
		pname, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, pname.text)
	}
	p.pos++ // ")"
	if p.accept(tokKeyword, "public") {
		fn.Public = true
	}
	if p.accept(tokKeyword, "returns") {
		for _, tok := range []struct {
			k tokenKind
			t string
		}{{tokPunct, "("}, {tokKeyword, "uint"}, {tokPunct, ")"}} {
			if _, err := p.expect(tok.k, tok.t); err != nil {
				return nil, err
			}
		}
		fn.Returns = true
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.pos++ // "}"
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	line := p.cur().line
	switch {
	case p.at(tokKeyword, "uint"):
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil

	case p.at(tokKeyword, "if"):
		return p.ifStmt()

	case p.at(tokKeyword, "while"):
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Line: line}, nil

	case p.at(tokKeyword, "for"):
		return p.forStmt()

	case p.at(tokKeyword, "require"):
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Require{Cond: cond, Line: line}, nil

	case p.at(tokKeyword, "emit"):
		p.pos++
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Emit{Event: name.text, Args: args, Line: line}, nil

	case p.at(tokKeyword, "return"):
		p.pos++
		var val Expr
		if !p.at(tokPunct, ";") {
			var err error
			val, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Return{Value: val, Line: line}, nil

	case p.at(tokKeyword, "revert"):
		p.pos++
		// Optional parentheses: revert() and revert;
		if p.accept(tokPunct, "(") {
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &Revert{Line: line}, nil

	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// varDecl parses "uint x = expr" without the trailing semicolon.
func (p *parser) varDecl() (Stmt, error) {
	line := p.cur().line
	p.pos++ // "uint"
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.text, Init: init, Line: line}, nil
}

// simpleStmt parses an assignment or expression statement without the
// trailing semicolon (shared by statement position and for-headers).
func (p *parser) simpleStmt() (Stmt, error) {
	line := p.cur().line
	if p.at(tokIdent, "") {
		// Lookahead to distinguish assignment from expression.
		name := p.cur().text
		next := p.toks[p.pos+1]
		if next.kind == tokPunct && (next.text == "=" || next.text == "+=" || next.text == "-=") {
			p.pos += 2
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Assign{Target: name, Op: next.text, Value: val, Line: line}, nil
		}
		if next.kind == tokPunct && next.text == "[" {
			// Could be mapping assignment m[k] = v or an index expression.
			save := p.pos
			p.pos += 2
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			if p.at(tokPunct, "=") || p.at(tokPunct, "+=") || p.at(tokPunct, "-=") {
				op := p.cur().text
				p.pos++
				val, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &Assign{Target: name, Index: key, Op: op, Value: val, Line: line}, nil
			}
			p.pos = save // plain expression, reparse
		}
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Line: line}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	line := p.cur().line
	p.pos++ // "if"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Line: line}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			elif, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = []Stmt{elif}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) forStmt() (Stmt, error) {
	line := p.cur().line
	p.pos++ // "for"
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	node := &For{Line: line}
	if !p.at(tokPunct, ";") {
		var err error
		if p.at(tokKeyword, "uint") {
			node.Init, err = p.varDecl()
		} else {
			node.Init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		node.Post = post
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

func (p *parser) callArgs() ([]Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.at(tokPunct, ")") {
		if len(args) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.pos++ // ")"
	return args, nil
}

// Expression parsing by precedence climbing.

var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return left, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, L: left, R: right, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "!" || t.text == "-") {
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &Num{Value: t.num, Line: t.line}, nil

	case t.kind == tokPunct && t.text == "(":
		p.pos++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil

	case t.kind == tokIdent:
		name := t.text
		p.pos++
		// Environment access: msg.sender, block.number, ...
		if (name == "msg" || name == "block") && p.accept(tokPunct, ".") {
			field, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			full := name + "." + field.text
			switch full {
			case "msg.sender", "msg.value", "block.number", "block.timestamp":
				return &Env{Name: full, Line: t.line}, nil
			default:
				return nil, p.errorf("unknown environment field %q", full)
			}
		}
		if p.at(tokPunct, "(") {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Name: name, Args: args, Line: t.line}, nil
		}
		if p.accept(tokPunct, "[") {
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return &Index{Name: name, Key: key, Line: t.line}, nil
		}
		return &Ref{Name: name, Line: t.line}, nil

	default:
		return nil, p.errorf("expected expression, found %s", t)
	}
}
