package minisol

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"diablo/internal/types"
	"diablo/internal/vm"
)

// Statement-level differential testing: generate random MiniSol programs
// (assignments, compound assignments, if/else, bounded for loops over
// three locals), compile them, execute the bytecode, and compare against a
// direct Go evaluation of the same program. Any divergence is a compiler
// or VM bug.

// genEnv tracks generated program state for the reference evaluation.
type genEnv struct {
	rng   *rand.Rand
	src   *strings.Builder
	depth int
}

// vars are the three mutable locals every generated program uses.
var varNames = []string{"x", "y", "z"}

type refState struct{ x, y, z uint64 }

func (s *refState) get(v string) uint64 {
	switch v {
	case "x":
		return s.x
	case "y":
		return s.y
	default:
		return s.z
	}
}

func (s *refState) set(v string, val uint64) {
	switch v {
	case "x":
		s.x = val
	case "y":
		s.y = val
	default:
		s.z = val
	}
}

// genExpr emits a random expression over x, y, z returning its evaluator.
func (g *genEnv) genExpr(depth int) func(*refState) uint64 {
	if depth == 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			n := uint64(g.rng.Intn(100) + 1)
			fmt.Fprintf(g.src, "%d", n)
			return func(*refState) uint64 { return n }
		default:
			v := varNames[g.rng.Intn(3)]
			g.src.WriteString(v)
			return func(s *refState) uint64 { return s.get(v) }
		}
	}
	ops := []struct {
		text string
		eval func(a, b uint64) uint64
	}{
		{"+", func(a, b uint64) uint64 { return a + b }},
		{"-", func(a, b uint64) uint64 { return a - b }},
		{"*", func(a, b uint64) uint64 { return a * b }},
		{"/", func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a / b
		}},
		{"%", func(a, b uint64) uint64 {
			if b == 0 {
				return 0
			}
			return a % b
		}},
		{"<", func(a, b uint64) uint64 { return b2u(a < b) }},
		{">", func(a, b uint64) uint64 { return b2u(a > b) }},
		{"==", func(a, b uint64) uint64 { return b2u(a == b) }},
		{"!=", func(a, b uint64) uint64 { return b2u(a != b) }},
		{"<=", func(a, b uint64) uint64 { return b2u(a <= b) }},
		{">=", func(a, b uint64) uint64 { return b2u(a >= b) }},
	}
	op := ops[g.rng.Intn(len(ops))]
	g.src.WriteString("(")
	l := g.genExpr(depth - 1)
	g.src.WriteString(" " + op.text + " ")
	r := g.genExpr(depth - 1)
	g.src.WriteString(")")
	return func(s *refState) uint64 { return op.eval(l(s), r(s)) }
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// genStmts emits up to n random statements, returning their evaluator.
func (g *genEnv) genStmts(n int, indent string) func(*refState) {
	var evals []func(*refState)
	for i := 0; i < n; i++ {
		evals = append(evals, g.genStmt(indent))
	}
	return func(s *refState) {
		for _, e := range evals {
			e(s)
		}
	}
}

func (g *genEnv) genStmt(indent string) func(*refState) {
	kind := g.rng.Intn(10)
	switch {
	case kind < 4 || g.depth >= 3: // plain assignment
		v := varNames[g.rng.Intn(3)]
		fmt.Fprintf(g.src, "%s%s = ", indent, v)
		e := g.genExpr(2)
		g.src.WriteString(";\n")
		return func(s *refState) { s.set(v, e(s)) }

	case kind < 6: // compound assignment
		v := varNames[g.rng.Intn(3)]
		op := []string{"+=", "-="}[g.rng.Intn(2)]
		fmt.Fprintf(g.src, "%s%s %s ", indent, v, op)
		e := g.genExpr(2)
		g.src.WriteString(";\n")
		return func(s *refState) {
			if op == "+=" {
				s.set(v, s.get(v)+e(s))
			} else {
				s.set(v, s.get(v)-e(s))
			}
		}

	case kind < 8: // if/else
		g.depth++
		defer func() { g.depth-- }()
		fmt.Fprintf(g.src, "%sif (", indent)
		cond := g.genExpr(2)
		g.src.WriteString(") {\n")
		then := g.genStmts(1+g.rng.Intn(2), indent+"\t")
		fmt.Fprintf(g.src, "%s} else {\n", indent)
		els := g.genStmts(1+g.rng.Intn(2), indent+"\t")
		fmt.Fprintf(g.src, "%s}\n", indent)
		return func(s *refState) {
			if cond(s) != 0 {
				then(s)
			} else {
				els(s)
			}
		}

	default: // bounded for loop
		g.depth++
		defer func() { g.depth-- }()
		iters := g.rng.Intn(5) + 1
		loopVar := fmt.Sprintf("i%d", g.rng.Int31())
		fmt.Fprintf(g.src, "%sfor (uint %s = 0; %s < %d; %s += 1) {\n",
			indent, loopVar, loopVar, iters, loopVar)
		body := g.genStmts(1+g.rng.Intn(2), indent+"\t")
		fmt.Fprintf(g.src, "%s}\n", indent)
		return func(s *refState) {
			for i := 0; i < iters; i++ {
				body(s)
			}
		}
	}
}

// TestCompiledProgramEquivalenceProperty is the statement-level
// differential test.
func TestCompiledProgramEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		g := &genEnv{rng: rng, src: &strings.Builder{}}
		g.src.WriteString("contract P {\n\tfunction f(uint a, uint b, uint c) public returns (uint) {\n")
		g.src.WriteString("\t\tuint x = a;\n\t\tuint y = b;\n\t\tuint z = c;\n")
		body := func(s *refState) {}
		{
			inner := g.genStmts(3+rng.Intn(4), "\t\t")
			body = inner
		}
		g.src.WriteString("\t\treturn x + y * 3 + z * 7;\n\t}\n}\n")
		src := g.src.String()

		compiled, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile error: %v\nprogram:\n%s", trial, err, src)
		}
		for sample := 0; sample < 4; sample++ {
			a := uint64(rng.Intn(1000))
			b := uint64(rng.Intn(1000))
			c := uint64(rng.Intn(1000))
			calldata, _ := compiled.Calldata("f", a, b, c)
			res := vm.New().Execute(compiled.Code, &vm.Context{
				Storage: vm.MapStorage{}, GasLimit: 100_000_000, Calldata: calldata,
			})
			if res.Status != types.StatusOK {
				t.Fatalf("trial %d: execution failed: %v %v\nprogram:\n%s", trial, res.Status, res.Err, src)
			}
			ref := &refState{x: a, y: b, z: c}
			body(ref)
			want := ref.x + ref.y*3 + ref.z*7
			if res.Return != want {
				t.Fatalf("trial %d: f(%d,%d,%d) = %d, reference = %d\nprogram:\n%s",
					trial, a, b, c, res.Return, want, src)
			}
		}
	}
}

// TestCompiledStateProgramsProperty extends the differential test to
// contract storage: random sequences of state-variable and mapping writes
// must leave the same final state as the reference.
func TestCompiledStateProgramsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	const src = `
contract S {
	uint total;
	mapping(uint => uint) bal;

	function credit(uint who, uint amount) public {
		bal[who] += amount;
		total += amount;
	}
	function debit(uint who, uint amount) public {
		if (bal[who] >= amount) {
			bal[who] -= amount;
			total -= amount;
		}
	}
	function balanceOf(uint who) public returns (uint) { return bal[who]; }
	function totalSupply() public returns (uint) { return total; }
}`
	compiled, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	st := vm.MapStorage{}
	ref := map[uint64]uint64{}
	var refTotal uint64
	call := func(fn string, args ...uint64) vm.Result {
		calldata, err := compiled.Calldata(fn, args...)
		if err != nil {
			t.Fatal(err)
		}
		return vm.New().Execute(compiled.Code, &vm.Context{
			Storage: st, GasLimit: 10_000_000, Calldata: calldata,
		})
	}
	for step := 0; step < 500; step++ {
		who := uint64(rng.Intn(8))
		amount := uint64(rng.Intn(50))
		if rng.Intn(2) == 0 {
			call("credit", who, amount)
			ref[who] += amount
			refTotal += amount
		} else {
			call("debit", who, amount)
			if ref[who] >= amount {
				ref[who] -= amount
				refTotal -= amount
			}
		}
	}
	for who := uint64(0); who < 8; who++ {
		if got := call("balanceOf", who).Return; got != ref[who] {
			t.Fatalf("balanceOf(%d) = %d, reference %d", who, got, ref[who])
		}
	}
	if got := call("totalSupply").Return; got != refTotal {
		t.Fatalf("total = %d, reference %d", got, refTotal)
	}
}
