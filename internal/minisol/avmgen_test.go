package minisol

import (
	"math/rand"
	"strings"
	"testing"

	"diablo/internal/avm"
	"diablo/internal/types"
	"diablo/internal/vm"
)

// callAVM invokes a compiled AVM contract function, returning the result
// and (for returns-functions) the value published through the return log.
func callAVM(t *testing.T, c *AVMCompiled, kv avm.KVStore, sender uint64, budget uint64, fn string, args ...uint64) (avm.Result, uint64) {
	t.Helper()
	appArgs, err := c.AppArgs(fn, args...)
	if err != nil {
		t.Fatalf("AppArgs(%s): %v", fn, err)
	}
	res := avm.Execute(c.Program, &avm.Context{
		Sender: sender, Args: appArgs, State: kv, Budget: budget,
	})
	var ret uint64
	for _, ev := range res.Events {
		if ev.ID == RetValueEventID && len(ev.Args) == 1 {
			ret = ev.Args[0]
		}
	}
	return res, ret
}

func TestAVMCounter(t *testing.T) {
	c, err := CompileAVM(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	kv := avm.NewMapKV(0)
	for i := 0; i < 3; i++ {
		res, _ := callAVM(t, c, kv, 1, 0, "add")
		if res.Outcome != avm.Approved {
			t.Fatalf("add #%d: %v %v", i, res.Outcome, res.Err)
		}
	}
	res, got := callAVM(t, c, kv, 1, 0, "get")
	if res.Outcome != avm.Approved || got != 3 {
		t.Fatalf("get = %d (%v)", got, res.Outcome)
	}
}

func TestAVMNewtonSqrt(t *testing.T) {
	src := `
contract SqrtLib {
	function sqrt(uint x) public returns (uint) {
		if (x == 0) { return 0; }
		uint z = (x + 1) / 2;
		uint y = x;
		while (z < y) {
			y = z;
			z = (x / z + z) / 2;
		}
		return y;
	}
}`
	c, err := CompileAVM(src)
	if err != nil {
		t.Fatal(err)
	}
	kv := avm.NewMapKV(0)
	for _, cse := range []struct{ in, want uint64 }{
		{0, 0}, {1, 1}, {2, 1}, {4, 2}, {99, 9}, {100, 10}, {10000 * 10000, 10000},
	} {
		res, got := callAVM(t, c, kv, 1, 0, "sqrt", cse.in)
		if res.Outcome != avm.Approved {
			t.Fatalf("sqrt(%d): %v %v", cse.in, res.Outcome, res.Err)
		}
		if got != cse.want {
			t.Fatalf("sqrt(%d) = %d, want %d", cse.in, got, cse.want)
		}
	}
}

func TestAVMRequireRejectsAndRollsBack(t *testing.T) {
	src := `
contract Bank {
	mapping(uint => uint) bal;
	function deposit(uint who, uint amount) public { bal[who] += amount; }
	function withdraw(uint who, uint amount) public {
		require(bal[who] >= amount);
		bal[who] -= amount;
	}
	function balanceOf(uint who) public returns (uint) { return bal[who]; }
}`
	c, err := CompileAVM(src)
	if err != nil {
		t.Fatal(err)
	}
	kv := avm.NewMapKV(0)
	callAVM(t, c, kv, 1, 0, "deposit", 7, 100)
	res, _ := callAVM(t, c, kv, 1, 0, "withdraw", 7, 500)
	if res.Outcome != avm.Rejected {
		t.Fatalf("over-withdraw = %v", res.Outcome)
	}
	if _, got := callAVM(t, c, kv, 1, 0, "balanceOf", 7); got != 100 {
		t.Fatalf("balance = %d after rejected withdraw", got)
	}
}

func TestAVMSenderAndUnknownMethod(t *testing.T) {
	src := `
contract S {
	function who() public returns (uint) { return msg.sender; }
}`
	c, err := CompileAVM(src)
	if err != nil {
		t.Fatal(err)
	}
	kv := avm.NewMapKV(0)
	if _, got := callAVM(t, c, kv, 4242, 0, "who"); got != 4242 {
		t.Fatalf("sender = %d", got)
	}
	// Unknown selector errors (TEAL err).
	res := avm.Execute(c.Program, &avm.Context{Args: []uint64{0xbad}, State: kv})
	if res.Outcome != avm.Errored {
		t.Fatalf("unknown method = %v", res.Outcome)
	}
}

func TestAVMRejectsMsgValue(t *testing.T) {
	src := `contract V { function paid() public returns (uint) { return msg.value; } }`
	if _, err := CompileAVM(src); err == nil || !strings.Contains(err.Error(), "not supported on the AVM") {
		t.Fatalf("msg.value should not compile for the AVM: %v", err)
	}
	// The EVM backend accepts the same contract: a real per-language
	// limitation, like the paper's floating-point gap.
	if _, err := Compile(src); err != nil {
		t.Fatalf("EVM backend rejected msg.value: %v", err)
	}
}

// TestAVMDAppSourcesCompile compiles the full DApp suite for the AVM (the
// paper's PyTeal ports) and smoke-tests one call each.
func TestAVMDAppSourcesCompile(t *testing.T) {
	sources := map[string]string{
		"exchange": exchangeLikeSrc, "fifa": counterSrc,
	}
	for name, src := range sources {
		if _, err := CompileAVM(src); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

const exchangeLikeSrc = `
contract Ex {
	uint apple;
	event Trade(uint stock, uint remaining);
	function init() public { apple = 1000000; }
	function buyApple() public {
		require(apple > 0);
		apple -= 1;
		emit Trade(1, apple);
	}
}`

// TestThreeWayDifferentialProperty runs the random statement programs of
// differential_test.go through BOTH backends and the Go reference: the
// EVM bytecode, the AVM program and the direct evaluation must agree.
func TestThreeWayDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 60; trial++ {
		g := &genEnv{rng: rng, src: &strings.Builder{}}
		g.src.WriteString("contract P {\n\tfunction f(uint a, uint b, uint c) public returns (uint) {\n")
		g.src.WriteString("\t\tuint x = a;\n\t\tuint y = b;\n\t\tuint z = c;\n")
		body := g.genStmts(3+rng.Intn(3), "\t\t")
		g.src.WriteString("\t\treturn x + y * 3 + z * 7;\n\t}\n}\n")
		src := g.src.String()

		evm, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: EVM compile: %v\n%s", trial, err, src)
		}
		avmC, err := CompileAVM(src)
		if err != nil {
			t.Fatalf("trial %d: AVM compile: %v\n%s", trial, err, src)
		}
		for sample := 0; sample < 3; sample++ {
			a := uint64(rng.Intn(1000))
			b := uint64(rng.Intn(1000))
			c := uint64(rng.Intn(1000))

			ref := &refState{x: a, y: b, z: c}
			body(ref)
			want := ref.x + ref.y*3 + ref.z*7

			calldata, _ := evm.Calldata("f", a, b, c)
			evmRes := vm.New().Execute(evm.Code, &vm.Context{
				Storage: vm.MapStorage{}, GasLimit: 100_000_000, Calldata: calldata,
			})
			if evmRes.Status != types.StatusOK || evmRes.Return != want {
				t.Fatalf("trial %d: EVM f(%d,%d,%d) = %d (%v), want %d\n%s",
					trial, a, b, c, evmRes.Return, evmRes.Status, want, src)
			}

			appArgs, _ := avmC.AppArgs("f", a, b, c)
			avmRes := avm.Execute(avmC.Program, &avm.Context{
				Args: appArgs, State: avm.NewMapKV(0), Budget: 10_000_000,
			})
			if avmRes.Outcome != avm.Approved {
				t.Fatalf("trial %d: AVM failed: %v %v\n%s", trial, avmRes.Outcome, avmRes.Err, src)
			}
			var got uint64
			for _, ev := range avmRes.Events {
				if ev.ID == RetValueEventID {
					got = ev.Args[0]
				}
			}
			if got != want {
				t.Fatalf("trial %d: AVM f(%d,%d,%d) = %d, want %d\n%s\n%s",
					trial, a, b, c, got, want, src, avm.Disassemble(avmC.Program))
			}
		}
	}
}

// TestAVMBudgetExceededOnHeavyLoop reproduces the paper's E2 outcome at
// the VM level: a compute-heavy loop exceeds the opcode budget regardless
// of how much the caller would pay.
func TestAVMBudgetExceededOnHeavyLoop(t *testing.T) {
	src := `
contract Heavy {
	function burn() public returns (uint) {
		uint acc = 0;
		for (uint i = 0; i < 100000; i += 1) {
			acc += i;
		}
		return acc;
	}
}`
	c, err := CompileAVM(src)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := callAVM(t, c, avm.NewMapKV(0), 1, 0, "burn")
	if res.Outcome != avm.BudgetExceeded {
		t.Fatalf("outcome = %v, want budget exceeded", res.Outcome)
	}
}

func TestAVMEventIDs(t *testing.T) {
	src := `
contract E {
	event A(uint x);
	event B(uint x, uint y);
	function go() public { emit A(1); emit B(2, 3); }
}`
	c, err := CompileAVM(src)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := callAVM(t, c, avm.NewMapKV(0), 1, 0, "go")
	if res.Outcome != avm.Approved || len(res.Events) != 2 {
		t.Fatalf("events = %v (%v)", res.Events, res.Outcome)
	}
	if res.Events[0].ID != 0 || res.Events[1].ID != 1 || res.Events[1].Args[1] != 3 {
		t.Fatalf("event payloads wrong: %+v", res.Events)
	}
}

func TestAppArgsErrors(t *testing.T) {
	c, err := CompileAVM(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppArgs("nope"); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := c.AppArgs("add", 1); err == nil {
		t.Fatal("wrong arity accepted")
	}
}
