package minisol

import (
	"fmt"

	"diablo/internal/avm"
)

// GenerateAVM is the second code generator: it compiles a parsed MiniSol
// contract to the TEAL-style AVM instruction set — the same way the
// paper's authors had to reimplement every DApp in PyTeal for Algorand.
// The backends differ exactly where the real VMs differ:
//
//   - locals live in scratch slots, internal functions are callsub/retsub
//     subroutines, control flow is relative branches;
//   - contract state is a flat key-value store: scalar variables key by
//     declaration slot, mapping elements by an arithmetic key mix;
//   - require compiles to assert-style branching and revert to logic
//     rejection;
//   - msg.value does not exist (application calls carry no payment), so
//     contracts using it do not compile for the AVM — the same class of
//     language limitation the paper hit with floating point and sqrt.
//
// Division and modulo keep MiniSol's EVM-style x/0 = 0 semantics by
// guarding the divisor, since the AVM errors on division by zero.

// AVMCompiled is the AVM build artifact.
type AVMCompiled struct {
	Name      string
	Program   []byte
	Functions map[string]*FuncMeta
	Events    map[string]*EventDecl
}

// RetValueEventID tags the synthetic log entry carrying a function's
// return value (AVM programs report results through logs).
const RetValueEventID = uint64(1)<<63 | 1

// AppArgs builds the application arguments to invoke a function.
func (c *AVMCompiled) AppArgs(fn string, args ...uint64) ([]uint64, error) {
	meta, ok := c.Functions[fn]
	if !ok {
		return nil, fmt.Errorf("minisol: contract %s has no function %q", c.Name, fn)
	}
	if !meta.Public {
		return nil, fmt.Errorf("minisol: function %q is not public", fn)
	}
	if len(args) != meta.NumParams {
		return nil, fmt.Errorf("minisol: function %q takes %d arguments, got %d", fn, meta.NumParams, len(args))
	}
	out := make([]uint64, 0, 1+len(args))
	out = append(out, meta.Selector)
	return append(out, args...), nil
}

// CompileAVM parses and compiles MiniSol source for the AVM.
func CompileAVM(src string) (*AVMCompiled, error) {
	contract, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return GenerateAVM(contract)
}

// stateKeyMix mixes a mapping's declaration slot with an element key; the
// generated code computes the same expression with AVM arithmetic.
const stateKeyMix = 0x9E3779B97F4A7C15

// avmGenerator holds AVM code generation state.
type avmGenerator struct {
	contract *Contract
	asm      *avm.Assembler
	states   map[string]*StateVar
	events   map[string]*EventDecl
	funcs    map[string]*Function
	meta     map[string]*FuncMeta

	paramSlots map[string][]uint8
	nextSlot   int
	labelSeq   int
	cur        *Function
}

// GenerateAVM compiles a parsed contract to an AVM program.
func GenerateAVM(c *Contract) (*AVMCompiled, error) {
	g := &avmGenerator{
		contract:   c,
		asm:        avm.NewAssembler(),
		states:     map[string]*StateVar{},
		events:     map[string]*EventDecl{},
		funcs:      map[string]*Function{},
		meta:       map[string]*FuncMeta{},
		paramSlots: map[string][]uint8{},
	}
	for _, sv := range c.States {
		if _, dup := g.states[sv.Name]; dup {
			return nil, compileError(sv.Line, "duplicate state variable %q", sv.Name)
		}
		g.states[sv.Name] = sv
	}
	for _, ev := range c.Events {
		if _, dup := g.events[ev.Name]; dup {
			return nil, compileError(ev.Line, "duplicate event %q", ev.Name)
		}
		g.events[ev.Name] = ev
	}
	for _, fn := range c.Funcs {
		if _, dup := g.funcs[fn.Name]; dup {
			return nil, compileError(fn.Line, "duplicate function %q", fn.Name)
		}
		g.funcs[fn.Name] = fn
		g.meta[fn.Name] = &FuncMeta{
			Name:      fn.Name,
			Selector:  Selector(fn.Name, len(fn.Params)),
			NumParams: len(fn.Params),
			Returns:   fn.Returns,
			Public:    fn.Public,
		}
		slots := make([]uint8, len(fn.Params))
		for i := range slots {
			s, err := g.alloc(fn.Line)
			if err != nil {
				return nil, err
			}
			slots[i] = s
		}
		g.paramSlots[fn.Name] = slots
	}
	if err := checkNoRecursion(g.funcs); err != nil {
		return nil, err
	}

	g.dispatcher()
	for _, fn := range c.Funcs {
		if err := g.function(fn); err != nil {
			return nil, err
		}
	}

	program, err := g.asm.Build()
	if err != nil {
		return nil, err
	}
	return &AVMCompiled{Name: c.Name, Program: program, Functions: g.meta, Events: g.events}, nil
}

// alloc reserves one scratch slot (the AVM has 256).
func (g *avmGenerator) alloc(line int) (uint8, error) {
	if g.nextSlot >= 256 {
		return 0, compileError(line, "contract needs more than the AVM's 256 scratch slots")
	}
	s := uint8(g.nextSlot)
	g.nextSlot++
	return s, nil
}

func (g *avmGenerator) label(hint string) string {
	g.labelSeq++
	return fmt.Sprintf("%s_%d", hint, g.labelSeq)
}

// dispatcher emits the application entry point: switch on the selector in
// application argument 0, bind parameters to scratch slots, call the
// subroutine, publish the return value as a log, approve.
func (g *avmGenerator) dispatcher() {
	a := g.asm
	a.PushInt(0).Op(avm.OpTxnArg) // selector
	for _, fn := range g.contract.Funcs {
		if !fn.Public {
			continue
		}
		a.Op(avm.OpDup).PushInt(g.meta[fn.Name].Selector).Op(avm.OpEq)
		a.Branch(avm.OpBNZ, "_ext_"+fn.Name)
	}
	a.Op(avm.OpErr) // unknown method

	for _, fn := range g.contract.Funcs {
		if !fn.Public {
			continue
		}
		a.Label("_ext_" + fn.Name)
		a.Op(avm.OpPop) // drop selector copy
		for i := range fn.Params {
			a.PushInt(uint64(i + 1)).Op(avm.OpTxnArg)
			a.Store(g.paramSlots[fn.Name][i])
		}
		a.Branch(avm.OpCallSub, "_fn_"+fn.Name)
		if fn.Returns {
			// Publish the result: stack [val] -> log(ret, val).
			a.PushInt(RetValueEventID)
			a.Log(1)
		}
		a.PushInt(1).Op(avm.OpReturn) // approve
	}
}

// function emits one subroutine.
func (g *avmGenerator) function(fn *Function) error {
	g.cur = fn
	g.asm.Label("_fn_" + fn.Name)
	sc := &scope{vars: map[string]uint64{}}
	for i, p := range fn.Params {
		if _, dup := sc.vars[p]; dup {
			return compileError(fn.Line, "duplicate parameter %q", p)
		}
		sc.vars[p] = uint64(g.paramSlots[fn.Name][i])
	}
	if err := g.stmts(fn.Body, sc); err != nil {
		return err
	}
	if fn.Returns {
		g.asm.PushInt(0)
	}
	g.asm.Op(avm.OpRetSub)
	return nil
}

func (g *avmGenerator) stmts(ss []Stmt, sc *scope) error {
	for _, s := range ss {
		if err := g.stmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (g *avmGenerator) stmt(s Stmt, sc *scope) error {
	a := g.asm
	switch x := s.(type) {
	case *VarDecl:
		if _, dup := sc.vars[x.Name]; dup {
			return compileError(x.Line, "variable %q redeclared in this scope", x.Name)
		}
		slot, err := g.alloc(x.Line)
		if err != nil {
			return err
		}
		if err := g.expr(x.Init, sc); err != nil {
			return err
		}
		a.Store(slot)
		sc.vars[x.Name] = uint64(slot)
		return nil

	case *Assign:
		return g.assign(x, sc)

	case *If:
		elseL, endL := g.label("else"), g.label("endif")
		if err := g.expr(x.Cond, sc); err != nil {
			return err
		}
		a.Branch(avm.OpBZ, elseL)
		if err := g.stmts(x.Then, &scope{parent: sc, vars: map[string]uint64{}}); err != nil {
			return err
		}
		a.Branch(avm.OpBranch, endL)
		a.Label(elseL)
		if err := g.stmts(x.Else, &scope{parent: sc, vars: map[string]uint64{}}); err != nil {
			return err
		}
		a.Label(endL)
		return nil

	case *While:
		startL, endL := g.label("while"), g.label("wend")
		a.Label(startL)
		if err := g.expr(x.Cond, sc); err != nil {
			return err
		}
		a.Branch(avm.OpBZ, endL)
		if err := g.stmts(x.Body, &scope{parent: sc, vars: map[string]uint64{}}); err != nil {
			return err
		}
		a.Branch(avm.OpBranch, startL)
		a.Label(endL)
		return nil

	case *For:
		inner := &scope{parent: sc, vars: map[string]uint64{}}
		if x.Init != nil {
			if err := g.stmt(x.Init, inner); err != nil {
				return err
			}
		}
		startL, endL := g.label("for"), g.label("fend")
		a.Label(startL)
		if x.Cond != nil {
			if err := g.expr(x.Cond, inner); err != nil {
				return err
			}
			a.Branch(avm.OpBZ, endL)
		}
		if err := g.stmts(x.Body, &scope{parent: inner, vars: map[string]uint64{}}); err != nil {
			return err
		}
		if x.Post != nil {
			if err := g.stmt(x.Post, inner); err != nil {
				return err
			}
		}
		a.Branch(avm.OpBranch, startL)
		a.Label(endL)
		return nil

	case *Require:
		okL := g.label("assert")
		if err := g.expr(x.Cond, sc); err != nil {
			return err
		}
		a.Branch(avm.OpBNZ, okL)
		// Rejection rolls state back, like revert; TEAL's assert errors.
		a.PushInt(0).Op(avm.OpReturn)
		a.Label(okL)
		return nil

	case *Emit:
		ev, ok := g.events[x.Event]
		if !ok {
			return compileError(x.Line, "undefined event %q", x.Event)
		}
		if len(x.Args) != ev.Arity {
			return compileError(x.Line, "event %q takes %d arguments, got %d", x.Event, ev.Arity, len(x.Args))
		}
		for _, arg := range x.Args {
			if err := g.expr(arg, sc); err != nil {
				return err
			}
		}
		a.PushInt(ev.ID)
		a.Log(uint8(len(x.Args)))
		return nil

	case *Return:
		if g.cur.Returns {
			if x.Value == nil {
				return compileError(x.Line, "function %q must return a value", g.cur.Name)
			}
			if err := g.expr(x.Value, sc); err != nil {
				return err
			}
		} else if x.Value != nil {
			return compileError(x.Line, "function %q does not return a value", g.cur.Name)
		}
		a.Op(avm.OpRetSub)
		return nil

	case *Revert:
		a.PushInt(0).Op(avm.OpReturn)
		return nil

	case *ExprStmt:
		produces, err := g.exprMaybeVoid(x.X, sc)
		if err != nil {
			return err
		}
		if produces {
			a.Op(avm.OpPop)
		}
		return nil

	default:
		return fmt.Errorf("minisol: unknown statement %T", s)
	}
}

// pushStateKey emits code computing a scalar variable's state key.
func (g *avmGenerator) pushScalarKey(sv *StateVar) {
	g.asm.PushInt(sv.Slot)
}

// pushMapKey emits code computing mapping[key]'s state key:
// (slot+1)*mix + key.
func (g *avmGenerator) pushMapKey(sv *StateVar, key Expr, sc *scope) error {
	g.asm.PushInt((sv.Slot + 1)).PushInt(stateKeyMix).Op(avm.OpMul)
	if err := g.expr(key, sc); err != nil {
		return err
	}
	g.asm.Op(avm.OpPlus)
	return nil
}

func (g *avmGenerator) assign(x *Assign, sc *scope) error {
	a := g.asm
	if slot, ok := sc.lookup(x.Target); ok {
		if x.Index != nil {
			return compileError(x.Line, "%q is not a mapping", x.Target)
		}
		if x.Op != "=" {
			a.Load(uint8(slot))
		}
		if err := g.expr(x.Value, sc); err != nil {
			return err
		}
		switch x.Op {
		case "+=":
			a.Op(avm.OpPlus)
		case "-=":
			a.Op(avm.OpMinus)
		}
		a.Store(uint8(slot))
		return nil
	}
	sv, ok := g.states[x.Target]
	if !ok {
		return compileError(x.Line, "assignment to undefined variable %q", x.Target)
	}
	if sv.IsMapping != (x.Index != nil) {
		if sv.IsMapping {
			return compileError(x.Line, "mapping %q must be indexed", x.Target)
		}
		return compileError(x.Line, "%q is not a mapping", x.Target)
	}
	// Compute the key, then the value: app_global_put pops value, key.
	if sv.IsMapping {
		if err := g.pushMapKey(sv, x.Index, sc); err != nil {
			return err
		}
	} else {
		g.pushScalarKey(sv)
	}
	if x.Op != "=" {
		// key on stack; need key old value: dup key then get.
		a.Op(avm.OpDup).Op(avm.OpAppGlobalGet)
		if err := g.expr(x.Value, sc); err != nil {
			return err
		}
		switch x.Op {
		case "+=":
			a.Op(avm.OpPlus)
		case "-=":
			a.Op(avm.OpMinus)
		}
	} else {
		if err := g.expr(x.Value, sc); err != nil {
			return err
		}
	}
	a.Op(avm.OpAppGlobalPut)
	return nil
}

func (g *avmGenerator) expr(e Expr, sc *scope) error {
	produces, err := g.exprMaybeVoid(e, sc)
	if err != nil {
		return err
	}
	if !produces {
		call := e.(*Call)
		return compileError(call.Line, "function %q returns no value", call.Name)
	}
	return nil
}

func (g *avmGenerator) exprMaybeVoid(e Expr, sc *scope) (bool, error) {
	a := g.asm
	switch x := e.(type) {
	case *Num:
		a.PushInt(x.Value)
		return true, nil

	case *Ref:
		if slot, ok := sc.lookup(x.Name); ok {
			a.Load(uint8(slot))
			return true, nil
		}
		if sv, ok := g.states[x.Name]; ok {
			if sv.IsMapping {
				return false, compileError(x.Line, "mapping %q must be indexed", x.Name)
			}
			g.pushScalarKey(sv)
			a.Op(avm.OpAppGlobalGet)
			return true, nil
		}
		return false, compileError(x.Line, "undefined variable %q", x.Name)

	case *Index:
		sv, ok := g.states[x.Name]
		if !ok {
			return false, compileError(x.Line, "undefined mapping %q", x.Name)
		}
		if !sv.IsMapping {
			return false, compileError(x.Line, "%q is not a mapping", x.Name)
		}
		if err := g.pushMapKey(sv, x.Key, sc); err != nil {
			return false, err
		}
		a.Op(avm.OpAppGlobalGet)
		return true, nil

	case *Env:
		switch x.Name {
		case "msg.sender":
			a.Op(avm.OpTxnSender)
		case "msg.value":
			// Application calls carry no payment on the AVM; the paper hit
			// the same class of per-language limitation (no floats, no
			// sqrt) when porting DApps to PyTeal.
			return false, compileError(x.Line, "msg.value is not supported on the AVM")
		case "block.number":
			a.Op(avm.OpGlobalRound)
		case "block.timestamp":
			a.Op(avm.OpGlobalTime)
		}
		return true, nil

	case *Unary:
		if x.Op == "-" {
			a.PushInt(0)
			if err := g.expr(x.X, sc); err != nil {
				return false, err
			}
			a.Op(avm.OpMinus)
			return true, nil
		}
		if err := g.expr(x.X, sc); err != nil {
			return false, err
		}
		a.Op(avm.OpNot)
		return true, nil

	case *Binary:
		if err := g.expr(x.L, sc); err != nil {
			return false, err
		}
		if err := g.expr(x.R, sc); err != nil {
			return false, err
		}
		switch x.Op {
		case "+":
			a.Op(avm.OpPlus)
		case "-":
			a.Op(avm.OpMinus)
		case "*":
			a.Op(avm.OpMul)
		case "/", "%":
			// Preserve MiniSol's EVM semantics (x/0 = 0): the AVM errors
			// on division by zero, so guard the divisor.
			zeroL, endL := g.label("div0"), g.label("divend")
			a.Op(avm.OpDup).Branch(avm.OpBZ, zeroL)
			if x.Op == "/" {
				a.Op(avm.OpDiv)
			} else {
				a.Op(avm.OpMod)
			}
			a.Branch(avm.OpBranch, endL)
			a.Label(zeroL)
			a.Op(avm.OpPop).Op(avm.OpPop).PushInt(0)
			a.Label(endL)
		case "<":
			a.Op(avm.OpLt)
		case ">":
			a.Op(avm.OpGt)
		case "<=":
			a.Op(avm.OpLe)
		case ">=":
			a.Op(avm.OpGe)
		case "==":
			a.Op(avm.OpEq)
		case "!=":
			a.Op(avm.OpNeq)
		case "&&":
			a.Op(avm.OpAnd)
		case "||":
			a.Op(avm.OpOr)
		default:
			return false, compileError(x.Line, "unknown operator %q", x.Op)
		}
		return true, nil

	case *Call:
		callee, ok := g.funcs[x.Name]
		if !ok {
			return false, compileError(x.Line, "undefined function %q", x.Name)
		}
		if len(x.Args) != len(callee.Params) {
			return false, compileError(x.Line, "function %q takes %d arguments, got %d",
				x.Name, len(callee.Params), len(x.Args))
		}
		for _, arg := range x.Args {
			if err := g.expr(arg, sc); err != nil {
				return false, err
			}
		}
		slots := g.paramSlots[x.Name]
		for i := len(slots) - 1; i >= 0; i-- {
			a.Store(slots[i])
		}
		a.Branch(avm.OpCallSub, "_fn_"+x.Name)
		return callee.Returns, nil

	default:
		return false, fmt.Errorf("minisol: unknown expression %T", e)
	}
}
