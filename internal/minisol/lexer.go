// Package minisol compiles MiniSol — a small Solidity-like contract
// language — to diablo/internal/vm bytecode. MiniSol is the language the
// DIABLO DApp suite is written in; it supports unsigned 64-bit integers,
// mappings, internal functions, control flow (if/while/for), require,
// events and the msg/block environment, which is sufficient to express all
// five of the paper's DApps including Newton's integer square root for the
// mobility-service contract.
package minisol

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokPunct
)

// keywords of the language.
var keywords = map[string]bool{
	"contract": true, "function": true, "uint": true, "mapping": true,
	"public": true, "returns": true, "return": true, "if": true,
	"else": true, "while": true, "for": true, "require": true,
	"emit": true, "event": true, "revert": true,
}

type token struct {
	kind tokenKind
	text string
	num  uint64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer splits source text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("minisol: line %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes whitespace and comments.
func (l *lexer) skipSpace() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-character punctuation, longest first.
var punctuation = []string{
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "=>",
	"{", "}", "(", ")", "[", "]", ";", ",", "=", "<", ">",
	"+", "-", "*", "/", "%", "!", ".",
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpace(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peekByte()

	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if !unicode.IsLetter(rune(c)) && !unicode.IsDigit(rune(c)) && c != '_' {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil

	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peekByte())) || l.peekByte() == 'x' ||
			('a' <= l.peekByte() && l.peekByte() <= 'f') || ('A' <= l.peekByte() && l.peekByte() <= 'F') ||
			l.peekByte() == '_') {
			l.advance()
		}
		text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
		v, err := strconv.ParseUint(text, 0, 64)
		if err != nil {
			return token{}, fmt.Errorf("minisol: line %d:%d: bad number %q", startLine, startCol, text)
		}
		return token{kind: tokNumber, text: text, num: v, line: startLine, col: startCol}, nil

	default:
		for _, p := range punctuation {
			if strings.HasPrefix(l.src[l.pos:], p) {
				for range p {
					l.advance()
				}
				return token{kind: tokPunct, text: p, line: startLine, col: startCol}, nil
			}
		}
		return token{}, fmt.Errorf("minisol: line %d:%d: unexpected character %q", startLine, startCol, string(c))
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
