// Robustness sweep: stress every blockchain with increasing constant
// workloads and watch who saturates, who sheds load and who collapses —
// an extended version of the paper's Fig. 4 with a full rate sweep.
//
// The grid's cells are independent, so the sweep fans out across all CPU
// cores through the parallel experiment runner; per-cell results are
// bit-identical to a serial sweep.
//
//	go run ./examples/robustness-sweep
//
// With --chaos each cell additionally runs under the suite's canonical
// crash-restart schedule (crash node 1 at 15s, restart at 35s) with
// client retries enabled, and the table reports each chain's liveness
// gap and time-to-recover instead of raw throughput.
//
//	go run ./examples/robustness-sweep --chaos
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"diablo"
)

func main() {
	chaosMode := flag.Bool("chaos", false, "run cells under the canonical crash-restart schedule")
	workers := flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()
	if *chaosMode {
		chaosSweep(*workers)
		return
	}
	rateSweep(*workers)
}

func rateSweep(workers int) {
	rates := []float64{500, 1000, 2000, 5000, 10000}
	chains := diablo.Chains()

	// One experiment per (chain, rate) cell, chain-major like the table.
	var exps []diablo.Experiment
	for _, chain := range chains {
		for _, rate := range rates {
			exps = append(exps, diablo.Experiment{
				Chain:  chain,
				Config: diablo.Configs.Devnet,
				Traces: []*diablo.Trace{diablo.Workloads.NativeConstant(rate, 60*time.Second)},
				Seed:   1,
				Tail:   60 * time.Second,
			})
		}
	}
	outs, err := diablo.RunExperiments(workers, exps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-11s", "chain")
	for _, r := range rates {
		fmt.Printf("%12.0f", r)
	}
	fmt.Println("   (offered TPS)")

	for ci, chain := range chains {
		fmt.Printf("%-11s", chain)
		for ri := range rates {
			out := outs[ci*len(rates)+ri]
			cell := fmt.Sprintf("%.0f", out.Summary.ThroughputTPS)
			if out.Crashed {
				cell += "*"
			}
			fmt.Printf("%12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\ncommitted TPS; * = the network collapsed during the run")
	fmt.Println("(devnet configuration: 10 nodes across ten regions)")
}

// chaosSweep runs every chain at a moderate rate under the canonical
// crash-restart schedule and reports recovery metrics.
func chaosSweep(workers int) {
	chains := diablo.Chains()
	exps := make([]diablo.Experiment, len(chains))
	for i, chain := range chains {
		exps[i] = diablo.Experiment{
			Chain:  chain,
			Config: diablo.Configs.Devnet,
			Traces: []*diablo.Trace{diablo.Workloads.NativeConstant(100, 60*time.Second)},
			Seed:   1,
			Tail:   120 * time.Second,
			Faults: diablo.CanonicalCrashRestart(1, 15*time.Second, 35*time.Second),
			Retry:  diablo.RetryPolicy{Timeout: 15 * time.Second, MaxRetries: 3},
		}
	}
	outs, err := diablo.RunExperiments(workers, exps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-11s%12s%12s%12s%12s%10s\n",
		"chain", "committed", "tput TPS", "gap s", "recover s", "retries")

	for i, chain := range chains {
		out := outs[i]
		rec := diablo.RecoveryFrom(out)
		recover := "n/a"
		if len(rec.Recoveries) > 0 {
			r := rec.Recoveries[len(rec.Recoveries)-1]
			if r.RecoverS < 0 {
				recover = "hang"
			} else {
				recover = fmt.Sprintf("%.1f", r.RecoverS)
			}
		}
		fmt.Printf("%-11s%12d%12.0f%12.1f%12s%10d\n",
			chain, out.Summary.Committed, out.Summary.ThroughputTPS,
			rec.LivenessGapS, recover, out.Retries)
	}
	fmt.Println("\ncanonical schedule: crash node 1 at 15s, restart at 35s; retries 15s x3")
	fmt.Println("gap = longest commit-free interval; recover = commits resumed after restart")
}
