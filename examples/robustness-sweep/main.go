// Robustness sweep: stress every blockchain with increasing constant
// workloads and watch who saturates, who sheds load and who collapses —
// an extended version of the paper's Fig. 4 with a full rate sweep.
//
//	go run ./examples/robustness-sweep
package main

import (
	"fmt"
	"log"
	"time"

	"diablo"
)

func main() {
	rates := []float64{500, 1000, 2000, 5000, 10000}

	fmt.Printf("%-11s", "chain")
	for _, r := range rates {
		fmt.Printf("%12.0f", r)
	}
	fmt.Println("   (offered TPS)")

	for _, chain := range diablo.Chains() {
		fmt.Printf("%-11s", chain)
		for _, rate := range rates {
			out, err := diablo.RunExperiment(diablo.Experiment{
				Chain:  chain,
				Config: diablo.Configs.Devnet,
				Traces: []*diablo.Trace{diablo.Workloads.NativeConstant(rate, 60*time.Second)},
				Seed:   1,
				Tail:   60 * time.Second,
			})
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%.0f", out.Summary.ThroughputTPS)
			if out.Crashed {
				cell += "*"
			}
			fmt.Printf("%12s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\ncommitted TPS; * = the network collapsed during the run")
	fmt.Println("(devnet configuration: 10 nodes across ten regions)")
}
