// Custom blockchain example: port a brand-new blockchain to DIABLO by
// implementing the paper's four-function abstraction (§4) — create_client,
// create_resource, encode and trigger — and run a standard workload
// against it. The toy chain here ("fifochain") batches submissions into a
// block every 500ms and commits with a fixed 200ms network delay, which is
// all the framework needs to measure it.
//
//	go run ./examples/custom-blockchain
package main

import (
	"fmt"
	"log"
	"time"

	"diablo"
	"diablo/internal/sim"
	"diablo/internal/stats"
	"diablo/internal/types"
)

// fifoChain is the simplest possible blockchain: one endpoint, FIFO
// batching, no failures.
type fifoChain struct {
	sched   *sim.Scheduler
	pending []pendingTx
	clients []*fifoClient
	height  uint64
}

type pendingTx struct {
	client *fifoClient
	token  any
	at     time.Duration
}

const (
	blockInterval = 500 * time.Millisecond
	commitDelay   = 200 * time.Millisecond
)

// Name implements diablo.Blockchain.
func (f *fifoChain) Name() string { return "fifochain" }

// Endpoints implements diablo.Blockchain (the set E).
func (f *fifoChain) Endpoints() []diablo.Endpoint { return []diablo.Endpoint{0} }

// CreateResource implements diablo.Blockchain: the toy chain has implicit
// accounts and no contracts.
func (f *fifoChain) CreateResource(spec diablo.ResourceSpec) (diablo.Resource, error) {
	if spec.Kind == diablo.ResourceContract {
		return diablo.Resource{}, fmt.Errorf("fifochain has no smart contracts")
	}
	return diablo.Resource{Kind: diablo.ResourceAccount}, nil
}

// CreateClient implements diablo.Blockchain.
func (f *fifoChain) CreateClient(endpoints []diablo.Endpoint) (diablo.Client, error) {
	c := &fifoClient{chain: f}
	f.clients = append(f.clients, c)
	return c, nil
}

// start runs the block production loop.
func (f *fifoChain) start() {
	f.sched.Every(blockInterval, func() {
		if len(f.pending) == 0 {
			return
		}
		batch := f.pending
		f.pending = nil
		f.height++
		// Every client learns the commit after the network delay.
		f.sched.After(commitDelay, func() {
			now := f.sched.Now()
			for _, p := range batch {
				p.client.observe(p.token, diablo.Observation{
					Submitted: p.at,
					Decided:   now,
					Status:    types.StatusOK,
				})
			}
		})
	})
}

// fifoClient implements the client side: encode pre-packages the request,
// trigger hands it to the chain.
type fifoClient struct {
	chain   *fifoChain
	observe func(any, diablo.Observation)
}

type fifoInteraction struct {
	spec diablo.InteractionSpec
}

// Encode implements diablo.Client (the paper's encode(φⁱ, r, t)).
func (c *fifoClient) Encode(spec diablo.InteractionSpec) (diablo.Interaction, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != diablo.InteractTransfer {
		return nil, fmt.Errorf("fifochain only supports transfers")
	}
	return fifoInteraction{spec: spec}, nil
}

// Trigger implements diablo.Client (the paper's c.trigger(e)).
func (c *fifoClient) Trigger(e diablo.Interaction, token any) error {
	if _, ok := e.(fifoInteraction); !ok {
		return fmt.Errorf("foreign interaction %T", e)
	}
	c.chain.pending = append(c.chain.pending, pendingTx{
		client: c,
		token:  token,
		at:     c.chain.sched.Now(),
	})
	return nil
}

// Observe implements diablo.Client.
func (c *fifoClient) Observe(fn func(any, diablo.Observation)) { c.observe = fn }

func main() {
	sched := sim.NewScheduler(1)
	chain := &fifoChain{sched: sched}
	chain.start()

	res, err := diablo.RunBenchmark(sched, chain, diablo.BenchmarkSpec{
		Traces:   []*diablo.Trace{diablo.Workloads.NativeConstant(100, 30*time.Second)},
		Accounts: 100,
		Seed:     1,
		Tail:     10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fifochain under DIABLO: %d submitted, %d committed (%.1f TPS)\n",
		res.Summary.Submitted, res.Summary.Committed, res.Summary.ThroughputTPS)
	fmt.Printf("latency: avg %.0fms, max %.0fms (expected <= %.0fms from batching + delay)\n",
		float64(res.Summary.AvgLatency.Milliseconds()),
		float64(res.Summary.MaxLatency.Milliseconds()),
		float64((blockInterval + commitDelay).Milliseconds()))
	fmt.Printf("p95 latency: %s\n", stats.Percentile(res.Latencies, 95))
	fmt.Println()
	fmt.Println("Porting a chain took one file: Endpoints, CreateClient,")
	fmt.Println("CreateResource, Encode and Trigger — the paper's 4-function interface.")
}
