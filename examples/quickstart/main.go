// Quickstart: run a small native-transfer benchmark against a simulated
// Quorum deployment, the same flow as the artifact's
// workload-native-10.yaml example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"diablo"
)

func main() {
	// 10 transactions per second for 60 seconds against Quorum deployed
	// in the geo-distributed devnet configuration (10 nodes, 10 regions).
	out, err := diablo.RunExperiment(diablo.Experiment{
		Chain:  "quorum",
		Config: diablo.Configs.Devnet,
		Traces: []*diablo.Trace{diablo.Workloads.NativeConstant(10, 60*time.Second)},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := out.Summary
	fmt.Printf("chain:       %s on %s (%d blocks)\n", out.Result.Chain, out.Experiment.Config.Name, out.Blocks)
	fmt.Printf("submitted:   %d transactions (%.1f TPS average load)\n", s.Submitted, s.AvgLoadTPS)
	fmt.Printf("committed:   %d (%.1f%%), throughput %.1f TPS\n", s.Committed, s.CommitRatio*100, s.ThroughputTPS)
	fmt.Printf("latency:     avg %.2fs, median %.2fs, p95 %.2fs, max %.2fs\n",
		s.AvgLatency.Seconds(), s.MedianLatency.Seconds(), s.P95Latency.Seconds(), s.MaxLatency.Seconds())
	fmt.Printf("simulated:   %.0fs of virtual time in %s of wall time\n",
		out.VirtualTime.Seconds(), out.WallTime.Round(time.Millisecond))

	// The per-second committed series shows the chain keeping up.
	fmt.Print("commits/s:   ")
	for i := 0; i < 10; i++ {
		fmt.Printf("%d ", out.CommittedPerSec.Counts[i])
	}
	fmt.Println("...")
}
