// London fee dynamics example: saturate a simulated Ethereum deployment
// and watch the EIP-1559 base fee climb, stall under-priced transactions,
// and fall back once the burst passes — the §5.2 mechanics that forced the
// paper's authors to sign transactions online.
//
//	go run ./examples/london-fees
package main

import (
	"fmt"
	"log"
	"time"

	"diablo/internal/chains"
	"diablo/internal/chains/chain"
	"diablo/internal/sim"
	"diablo/internal/simnet"
	"diablo/internal/types"
	"diablo/internal/wallet"
)

func main() {
	params, err := chains.ParamsFor("ethereum")
	if err != nil {
		log.Fatal(err)
	}
	sched := sim.NewScheduler(1)
	wan := simnet.New(sched)
	net := chain.Deploy(sched, wan, params, chain.Deployment{
		Nodes: 4, VCPUs: 8, Regions: []simnet.Region{simnet.Ohio},
	})
	w := wallet.New(wallet.FastScheme{}, "london-example", 200)
	client := net.NewClient(0)

	floor := net.BaseFee()
	var stuckCommitAt time.Duration
	var stuckID types.Hash
	client.OnDecided = func(id types.Hash, _ types.ExecStatus, at time.Duration) {
		if id == stuckID {
			stuckCommitAt = at
		}
	}

	net.Start()
	// Saturate blocks for 60 seconds with well-priced traffic (each
	// sender reads the live fee right before signing, as DIABLO had to).
	for i := 0; i < 3000; i++ {
		i := i
		sched.At(time.Duration(i)*20*time.Millisecond, func() {
			tx := &types.Transaction{
				Kind: types.KindTransfer, To: w.Get(0).Address, Value: 1,
				GasLimit: 21000, GasPrice: net.BaseFee() * 2,
			}
			w.Get(i%199 + 1).SignNext(tx)
			client.Submit(tx)
		})
	}
	// Mid-burst, submit one transaction pre-signed at the old fee.
	var stuckSubmitAt time.Duration
	sched.At(30*time.Second, func() {
		tx := &types.Transaction{
			Kind: types.KindTransfer, To: w.Get(0).Address, Value: 1,
			GasLimit: 21000, GasPrice: floor,
		}
		w.Get(0).SignNext(tx)
		stuckID = tx.ID()
		stuckSubmitAt = sched.Now()
		client.Submit(tx)
	})

	fmt.Printf("%-8s %12s\n", "time", "base fee")
	for _, at := range []int{0, 12, 24, 36, 48, 60, 120, 240, 480} {
		at := at
		sched.At(time.Duration(at)*time.Second, func() {
			fmt.Printf("%6ds %12d\n", at, net.BaseFee())
		})
	}
	sched.RunUntil(600 * time.Second)
	net.Stop()

	fmt.Println()
	fmt.Printf("fee floor: %d; the saturated blocks pushed it up 12.5%% per block,\n", floor)
	fmt.Println("then empty blocks walked it back down after the burst.")
	if stuckCommitAt > 0 {
		fmt.Printf("\nthe transaction pre-signed at the old fee (t=%.0fs) stayed stuck for\n", stuckSubmitAt.Seconds())
		fmt.Printf("%.0f seconds until the fee fell below its price — the paper's\n", (stuckCommitAt - stuckSubmitAt).Seconds())
		fmt.Println("\"risks to be underpriced\" problem, and why DIABLO signs online.")
	} else {
		fmt.Println("\nthe under-priced transaction never committed within the run.")
	}
}
