// Exchange DApp example: deploy the ExchangeContractGafam decentralized
// exchange and stress two blockchains with the NASDAQ Apple opening burst
// (10,000 trades in the first second), then compare their latency
// distributions — a miniature of the paper's Fig. 6.
//
//	go run ./examples/exchange-nasdaq
package main

import (
	"fmt"
	"log"
	"time"

	"diablo"
	"diablo/internal/stats"
)

func main() {
	apple, err := diablo.Workloads.NASDAQ("apple")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %.0f TPS burst, then %.0f TPS for %.0fs\n\n",
		apple.Name, apple.Peak(), apple.Rates[1], apple.Duration().Seconds())

	for _, chain := range []string{"quorum", "algorand"} {
		out, err := diablo.RunExperiment(diablo.Experiment{
			Chain:  chain,
			Config: diablo.Configs.Consortium,
			Traces: []*diablo.Trace{apple},
			Seed:   1,
			Tail:   180 * time.Second,
			// Scale the 200-node consortium down 10x so the example runs
			// in seconds; drop ScaleNodes for the full-size run.
			ScaleNodes: 10,
		})
		if err != nil {
			log.Fatal(err)
		}
		cdf := stats.NewCDF(out.Latencies, out.Summary.Submitted)
		fmt.Printf("%s:\n", chain)
		fmt.Printf("  committed %.1f%% of %d trades (%d dropped by the mempool)\n",
			out.Summary.CommitRatio*100, out.Summary.Submitted, out.Dropped)
		fmt.Printf("  latency: p50 %s  p90 %s  max %.1fs\n",
			fmtQ(cdf.Quantile(0.5)), fmtQ(cdf.Quantile(0.9)), out.Summary.MaxLatency.Seconds())
		fmt.Print("  CDF: ")
		for _, at := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second, 32 * time.Second} {
			fmt.Printf("<=%ds:%.0f%%  ", int(at.Seconds()), cdf.At(at)*100)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("Quorum's IBFT never drops a request and commits the burst quickly;")
	fmt.Println("Algorand's bounded pool sheds part of it — the paper's availability result.")
}

func fmtQ(d time.Duration) string {
	if d < 0 {
		return "never"
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}
