// Package diablo is the public API of this DIABLO reproduction: a
// benchmark suite that evaluates blockchains with realistic decentralized
// applications (Gramoli et al., EuroSys 2023).
//
// The library exposes four layers:
//
//   - Experiments: RunExperiment executes a (blockchain, deployment
//     configuration, workload) cell and returns the aggregate metrics the
//     paper reports — throughput, latency, commit ratio, drops and
//     collapse events.
//   - Exhibits: the report sub-API regenerates every table and figure of
//     the paper's evaluation (see internal/report via the Exhibit
//     helpers).
//   - The blockchain abstraction <E, R, I> of §4: implement Blockchain
//     and Client (four functions: create_client, create_resource, encode,
//     trigger) to benchmark a new chain; see examples/custom-blockchain.
//   - Specifications: the workload specification language of §4 and the
//     setup file of §5.3, via ParseBenchmark and ParseSetup.
//
// Quick start:
//
//	out, err := diablo.RunExperiment(diablo.Experiment{
//	    Chain:  "quorum",
//	    Config: diablo.Configs.Consortium,
//	    Traces: []*diablo.Trace{diablo.Workloads.FIFA()},
//	})
//	fmt.Println(out.Summary.ThroughputTPS)
package diablo

import (
	"io"
	"time"

	"diablo/internal/bench"
	"diablo/internal/chains/chain"
	"diablo/internal/chaos"
	"diablo/internal/collect"
	"diablo/internal/configs"
	"diablo/internal/core"
	"diablo/internal/report"
	"diablo/internal/spec"
	"diablo/internal/workloads"

	chainsreg "diablo/internal/chains"
)

// Experiment is one benchmark run: a blockchain, a Table 3 deployment
// configuration and one or more workload traces.
type Experiment = bench.Experiment

// Outcome is an experiment's result.
type Outcome = bench.Outcome

// Trace is a workload: a per-second submission schedule bound to a DApp
// function (or to native transfers).
type Trace = workloads.Trace

// Config is a Table 3 deployment configuration.
type Config = configs.Config

// RunExperiment executes an experiment on the simulated testbed.
func RunExperiment(e Experiment) (*Outcome, error) { return bench.Run(e) }

// RunExperiments executes independent experiments concurrently on a worker
// pool (workers <= 0 uses GOMAXPROCS, 1 runs serially) and returns the
// outcomes in input order. Each experiment runs on its own isolated
// scheduler and RNGs, so outcomes are bit-identical to serial execution —
// only the wall-clock time changes. Use it to sweep grids of cells (chains
// x workloads x rates), the shape of every figure in the paper.
func RunExperiments(workers int, es []Experiment) ([]*Outcome, error) {
	return bench.RunMany(workers, es)
}

// Chains lists the six evaluated blockchains: algorand, avalanche, diem,
// ethereum, quorum, solana.
func Chains() []string { return chainsreg.Names() }

// Configs groups the five deployment configurations of Table 3.
var Configs = struct {
	Datacenter, Testnet, Devnet, Community, Consortium *Config
}{
	Datacenter: configs.Datacenter,
	Testnet:    configs.Testnet,
	Devnet:     configs.Devnet,
	Community:  configs.Community,
	Consortium: configs.Consortium,
}

// ConfigByName resolves a Table 3 configuration name.
func ConfigByName(name string) (*Config, error) { return configs.ByName(name) }

// Workloads groups the DApp workload constructors of §3.
var Workloads = struct {
	// GAFAM is the accumulated five-stock NASDAQ exchange workload.
	GAFAM func() *Trace
	// NASDAQ is one stock's opening burst (google, amazon, facebook,
	// microsoft, apple).
	NASDAQ func(stock string) (*Trace, error)
	// Dota2 is the ~13,000 TPS gaming workload.
	Dota2 func() *Trace
	// FIFA is the 1998 world-cup web-service workload.
	FIFA func() *Trace
	// Uber is the compute-intensive mobility-service workload.
	Uber func() *Trace
	// YouTube is the 38,761 TPS video-sharing workload.
	YouTube func() *Trace
	// Constant is a fixed-rate trace against a DApp function.
	Constant func(name, dapp, fn string, tps float64, duration time.Duration) *Trace
	// NativeConstant is a fixed-rate native-transfer trace.
	NativeConstant func(tps float64, duration time.Duration) *Trace
	// ByName resolves any suite trace by name.
	ByName func(name string) (*Trace, error)
}{
	GAFAM:          workloads.GAFAM,
	NASDAQ:         workloads.NASDAQ,
	Dota2:          workloads.Dota2,
	FIFA:           workloads.FIFA,
	Uber:           workloads.Uber,
	YouTube:        workloads.YouTube,
	Constant:       workloads.Constant,
	NativeConstant: workloads.NativeConstant,
	ByName:         workloads.ByName,
}

// Blockchain is the §4 abstraction a new chain implements to run under
// DIABLO: Endpoints (the set E), CreateClient, CreateResource, and — on
// the returned Client — Encode and Trigger.
type Blockchain = core.Blockchain

// Client is a worker's connection to blockchain nodes.
type Client = core.Client

// Endpoint identifies a blockchain node (an element of the set E).
type Endpoint = core.Endpoint

// Interaction is an encoded, pre-signed interaction.
type Interaction = core.Interaction

// InteractionSpec describes an interaction before encoding.
type InteractionSpec = core.InteractionSpec

// Observation reports a triggered interaction's fate.
type Observation = core.Observation

// Resource and ResourceSpec model the resource set R.
type (
	Resource     = core.Resource
	ResourceSpec = core.ResourceSpec
)

// Interaction and resource kinds.
const (
	InteractTransfer = core.InteractTransfer
	InteractInvoke   = core.InteractInvoke
	ResourceAccount  = core.ResourceAccount
	ResourceContract = core.ResourceContract
)

// BenchmarkSpec configures a core-engine run against any Blockchain
// implementation.
type BenchmarkSpec = core.BenchmarkSpec

// RunBenchmark drives a workload through any Blockchain implementation on
// the given scheduler (see examples/custom-blockchain).
var RunBenchmark = core.Run

// FaultSchedule is a deterministic chaos timeline applied to an
// experiment via Experiment.Faults: crashes, restarts, partitions, lossy
// links, added delay/jitter, bandwidth degradation and stragglers, each at
// a scripted virtual time. Same experiment + schedule + seed replays
// bit-identically.
type FaultSchedule = chaos.Schedule

// FaultEvent is one scripted fault of a FaultSchedule.
type FaultEvent = chaos.Event

// Fault kinds for FaultEvent.Kind.
const (
	FaultCrash     = chaos.Crash
	FaultRestart   = chaos.Restart
	FaultPartition = chaos.Partition
	FaultHeal      = chaos.Heal
	FaultLoss      = chaos.Loss
	FaultDelay     = chaos.Delay
	FaultBandwidth = chaos.Bandwidth
	FaultSlow      = chaos.Slow
)

// CanonicalCrashRestart is the suite's standard recovery probe: crash one
// node, restart it later, measure when commits resume.
var CanonicalCrashRestart = chaos.CanonicalCrashRestart

// RetryPolicy configures client-side resubmission with exponential backoff
// (Experiment.Retry); the zero value disables retries.
type RetryPolicy = chain.RetryPolicy

// Recovery quantifies a chaos run: liveness gap, per-phase throughput and
// latency, and time-to-recover after each fault clears.
type Recovery = collect.Recovery

// RecoveryFrom computes recovery metrics for an outcome run under a fault
// schedule (nil without one).
var RecoveryFrom = collect.RecoveryFrom

// ParseBenchmark parses a workload specification document (§4).
func ParseBenchmark(src string) (*spec.Benchmark, error) { return spec.ParseBenchmark(src) }

// ParseSetup parses a blockchain setup document (§5.3).
func ParseSetup(src string) (*spec.Setup, error) { return spec.ParseSetup(src) }

// ExhibitIDs lists the reproducible tables and figures.
func ExhibitIDs() []string { return report.IDs() }

// ExhibitOptions scales exhibit runs (zero value = the paper's full scale).
type ExhibitOptions = report.Options

// RunExhibit regenerates a table or figure, rendering it to w.
func RunExhibit(w io.Writer, id string, o ExhibitOptions) error {
	runner := report.Experiments[id]
	var cells []report.Cell
	if runner != nil {
		var err error
		cells, err = runner(o)
		if err != nil {
			return err
		}
	}
	return report.Render(w, id, cells)
}
